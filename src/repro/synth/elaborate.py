"""Elaboration: Verilog AST -> flat bit-level gate netlist.

The elaborator walks the design hierarchy from a chosen root, evaluates
parameters, unrolls for-loops, symbolically executes always blocks (with
correct blocking / non-blocking semantics and latch detection) and bit-blasts
every word-level operator into AND/OR/NOT/XOR/BUF/DFF gates.

Simplifications relative to full IEEE-1364, documented in DESIGN.md:

- single implicit clock; ``always @(posedge clk or negedge rst)`` reset terms
  are folded into synchronous logic on the reset signal,
- unsigned arithmetic only,
- no memories, functions, generate blocks or tristate logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.verilog import ast
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist

_MAX_LOOP_ITERATIONS = 65536
_DEFAULT_INT_WIDTH = 32


class SynthesisError(Exception):
    """Raised when the design cannot be synthesized (latches, bad widths...)."""


@dataclass
class _ModuleCtx:
    """Per-instance elaboration context."""

    module: ast.Module
    prefix: str  # hierarchical prefix, "" for the root
    consts: Dict[str, int] = field(default_factory=dict)  # params + loop vars
    widths: Dict[str, int] = field(default_factory=dict)
    bits: Dict[str, List[int]] = field(default_factory=dict)  # canonical nets

    def path(self, signal: str) -> str:
        return f"{self.prefix}{signal}"


class _ProcEnv:
    """Symbolic state during always-block execution.

    ``cur`` holds blocking-visible values, ``nba`` the pending non-blocking
    updates.  Both map signal name -> full-width bit list.
    """

    def __init__(self) -> None:
        self.cur: Dict[str, List[int]] = {}
        self.nba: Dict[str, List[int]] = {}

    def copy(self) -> "_ProcEnv":
        out = _ProcEnv()
        out.cur = {k: list(v) for k, v in self.cur.items()}
        out.nba = {k: list(v) for k, v in self.nba.items()}
        return out


class Elaborator:
    """Builds a flat gate netlist for one root module of a design."""

    def __init__(self, design) -> None:
        self._design = design
        self._not_cache: Dict[int, int] = {}

    def synthesize(self, root: Optional[str] = None,
                   name: Optional[str] = None) -> Netlist:
        from repro.obs import counter, span

        root_name = root if root is not None else self._design.top
        with span("synth.elaborate", root=root_name) as sp:
            module = self._design.module(root_name)
            netlist = Netlist(name or root_name)
            self._netlist = netlist
            self._not_cache = {}
            self._current_prefix = ""
            netlist.regions = {}  # type: ignore[attr-defined]

            ctx = self._make_ctx(module, prefix="", overrides={},
                                 parent_ctx=None)
            # Root ports become PIs/POs.
            for port in module.ports:
                width = ctx.widths[port.name]
                if port.direction == "input":
                    nets = [netlist.add_pi(_bit_name(port.name, i, width))
                            for i in range(width)]
                    ctx.bits[port.name] = nets
                    for net in nets:
                        netlist.regions[net] = ""
            self._elaborate_body(ctx)
            for port in module.ports:
                if port.direction == "output":
                    width = ctx.widths[port.name]
                    for i, net in enumerate(ctx.bits[port.name]):
                        netlist.add_po(net, _bit_name(port.name, i, width))
            sp.set("gates", len(netlist.gates))
        counter("synth.elaborations").inc()
        counter("synth.gates_elaborated").inc(len(netlist.gates))
        return netlist

    # -- context construction ------------------------------------------------

    def _make_ctx(self, module: ast.Module, prefix: str,
                  overrides: Dict[str, int],
                  parent_ctx: Optional[_ModuleCtx]) -> _ModuleCtx:
        ctx = _ModuleCtx(module=module, prefix=prefix)
        for param in module.params:
            if param.name in overrides and not param.local:
                ctx.consts[param.name] = overrides[param.name]
            else:
                ctx.consts[param.name] = self._const_eval(param.value, ctx)
        for port in module.ports:
            ctx.widths[port.name] = self._range_width(port.range, ctx)
        for net in module.nets:
            if net.name in ctx.widths:
                # A port redeclared as wire/reg in the body keeps its width.
                continue
            if net.kind == "integer":
                ctx.widths[net.name] = _DEFAULT_INT_WIDTH
            else:
                ctx.widths[net.name] = self._range_width(net.range, ctx)
        # Pre-allocate canonical bit nets for every non-input signal.
        for name, width in ctx.widths.items():
            if name in ctx.bits:
                continue
            is_input = any(
                p.name == name and p.direction == "input" for p in module.ports
            )
            if is_input and parent_ctx is None and prefix == "":
                continue  # root inputs handled by synthesize()
            ctx.bits[name] = [
                self._new_net(ctx, _bit_name(name, i, width))
                for i in range(width)
            ]
        return ctx

    def _range_width(self, rng: Optional[ast.Range], ctx: _ModuleCtx) -> int:
        if rng is None:
            return 1
        msb = self._const_eval(rng.msb, ctx)
        lsb = self._const_eval(rng.lsb, ctx)
        if lsb != 0 or msb < lsb:
            raise SynthesisError(
                f"module {ctx.module.name}: only [N:0] ranges are supported, "
                f"got [{msb}:{lsb}]"
            )
        return msb - lsb + 1

    def _new_net(self, ctx: _ModuleCtx, name: str) -> int:
        net = self._netlist.new_net(ctx.prefix + name)
        self._netlist.regions[net] = ctx.prefix
        return net

    # -- module body ----------------------------------------------------------

    def _elaborate_body(self, ctx: _ModuleCtx) -> None:
        module = ctx.module
        prev_prefix = self._current_prefix
        self._current_prefix = ctx.prefix
        try:
            for gate in module.gates:
                self._elaborate_gate(gate, ctx)
            for assign in module.assigns:
                self._elaborate_cont_assign(assign, ctx)
            for inst in module.instances:
                self._elaborate_instance(inst, ctx)
            for always in module.always_blocks:
                self._elaborate_always(always, ctx)
        finally:
            self._current_prefix = prev_prefix

    def _elaborate_gate(self, gate: ast.GateInstance, ctx: _ModuleCtx) -> None:
        ins = [self._eval(t, ctx, None, 1)[0] for t in gate.terminals[1:]]
        gtype = {
            "and": GateType.AND,
            "or": GateType.OR,
            "nand": GateType.NAND,
            "nor": GateType.NOR,
            "xor": GateType.XOR,
            "xnor": GateType.XNOR,
            "not": GateType.NOT,
            "buf": GateType.BUF,
        }[gate.gate_type]
        if gtype in (GateType.NOT, GateType.BUF):
            if len(ins) != 1:
                raise SynthesisError(
                    f"{gate.gate_type} gate takes one input "
                    f"(module {ctx.module.name}, line {gate.line})"
                )
            out = self._netlist.add_gate(gtype, ins)
        else:
            out = self._netlist.add_gate(gtype, ins)
        self._netlist.regions[out] = ctx.prefix
        self._drive_target(gate.terminals[0], [out], ctx)

    def _elaborate_cont_assign(self, assign: ast.ContAssign,
                               ctx: _ModuleCtx) -> None:
        width = self._target_width(assign.target, ctx)
        value = self._eval(assign.rhs, ctx, None, width)
        self._drive_target(assign.target, value, ctx)

    # -- instances ------------------------------------------------------------

    def _elaborate_instance(self, inst: ast.Instance, ctx: _ModuleCtx) -> None:
        child_mod = self._design.module(inst.module_name)
        overrides: Dict[str, int] = {}
        if inst.param_overrides:
            nonlocal_params = [p.name for p in child_mod.params if not p.local]
            for idx, (name, expr) in enumerate(inst.param_overrides):
                value = self._const_eval(expr, ctx)
                if name is not None:
                    overrides[name] = value
                elif idx < len(nonlocal_params):
                    overrides[nonlocal_params[idx]] = value
                else:
                    raise SynthesisError(
                        f"too many positional parameter overrides on "
                        f"instance {inst.inst_name!r}"
                    )
        child_prefix = f"{ctx.prefix}{inst.inst_name}."
        child_ctx = self._make_ctx(child_mod, child_prefix, overrides, ctx)

        pmap = _port_map(child_mod, inst)
        # Drive child input ports from parent expressions.
        for port in child_mod.ports:
            if port.direction != "input":
                continue
            width = child_ctx.widths[port.name]
            expr = pmap.get(port.name)
            if expr is None:
                # Unconnected input: tie to 0 (conservative).
                for net in child_ctx.bits[port.name]:
                    self._netlist.add_gate_to(GateType.BUF, net, (CONST0,))
                continue
            value = self._eval(expr, ctx, None, width)
            for net, src in zip(child_ctx.bits[port.name], value):
                self._netlist.add_gate_to(GateType.BUF, net, (src,))

        self._elaborate_body(child_ctx)

        # Wire child outputs into parent targets.
        for port in child_mod.ports:
            if port.direction != "output":
                continue
            expr = pmap.get(port.name)
            if expr is None:
                continue  # unconnected output: dangling, fine
            self._drive_target(expr, list(child_ctx.bits[port.name]), ctx)

    # -- always blocks ---------------------------------------------------------

    def _elaborate_always(self, always: ast.Always, ctx: _ModuleCtx) -> None:
        targets = always.body.defined()
        for name in targets:
            if name not in ctx.widths:
                raise SynthesisError(
                    f"module {ctx.module.name}: assignment to undeclared "
                    f"signal {name!r} (line {always.line})"
                )
        env = _ProcEnv()
        self._exec_stmt(always.body, env, ctx, always, targets)
        if always.is_sequential:
            # Non-blocking updates win over intra-block blocking temporaries
            # for the registered value; every assigned signal becomes a DFF.
            final: Dict[str, List[int]] = {}
            for name, bits in env.cur.items():
                final[name] = bits
            for name, bits in env.nba.items():
                final[name] = bits
            for name, bits in final.items():
                qbits = ctx.bits[name]
                for q, d in zip(qbits, bits):
                    self._netlist.add_gate_to(GateType.DFF, q, (d,))
        else:
            final = {}
            for name, bits in env.cur.items():
                final[name] = bits
            for name, bits in env.nba.items():
                final[name] = bits
            for name, bits in final.items():
                for dst, src in zip(ctx.bits[name], bits):
                    self._netlist.add_gate_to(GateType.BUF, dst, (src,))

    def _proc_lookup(self, name: str, env: _ProcEnv, ctx: _ModuleCtx,
                     always: ast.Always, targets: Set[str],
                     line: int) -> List[int]:
        """Current value of ``name`` inside an always block."""
        if name in env.cur:
            return env.cur[name]
        if name in ctx.consts:
            width = ctx.widths.get(name, _DEFAULT_INT_WIDTH)
            return self._const_bits(ctx.consts[name], width)
        if name not in ctx.bits:
            raise SynthesisError(
                f"module {ctx.module.name}: undeclared signal {name!r} "
                f"(line {line})"
            )
        if not always.is_sequential and name in targets:
            raise SynthesisError(
                f"module {ctx.module.name}: latch inferred for {name!r} — "
                f"it is read (or not assigned on every path) before being "
                f"assigned in a combinational always block (line {line})"
            )
        return ctx.bits[name]

    def _exec_stmt(self, stmt: ast.Stmt, env: _ProcEnv, ctx: _ModuleCtx,
                   always: ast.Always, targets: Set[str]) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._exec_stmt(inner, env, ctx, always, targets)
        elif isinstance(stmt, ast.AssignStmt):
            self._exec_assign(stmt, env, ctx, always, targets)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env, ctx, always, targets)
        elif isinstance(stmt, ast.Case):
            self._exec_stmt(_case_to_if(stmt), env, ctx, always, targets)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env, ctx, always, targets)
        else:  # pragma: no cover - defensive
            raise SynthesisError(f"unsupported statement {stmt!r}")

    def _exec_assign(self, stmt: ast.AssignStmt, env: _ProcEnv,
                     ctx: _ModuleCtx, always: ast.Always,
                     targets: Set[str]) -> None:
        width = self._target_width(stmt.target, ctx)
        value = self._eval(stmt.rhs, ctx, (env, always, targets), width)
        store = env.cur if stmt.blocking else env.nba
        self._proc_store(stmt.target, value, store, env, ctx, always, targets)

    def _proc_store(self, target: ast.Expr, value: List[int],
                    store: Dict[str, List[int]], env: _ProcEnv,
                    ctx: _ModuleCtx, always: ast.Always,
                    targets: Set[str]) -> None:
        if isinstance(target, ast.Ident):
            width = ctx.widths[target.name]
            store[target.name] = _fit(value, width, self)
        elif isinstance(target, ast.BitSelect):
            idx = self._const_eval(target.index, ctx, allow_signals=False)
            current = list(self._store_lookup(target.name, store, env, ctx,
                                              always, targets, target.line))
            if not 0 <= idx < len(current):
                raise SynthesisError(
                    f"bit index {idx} out of range for {target.name!r}"
                )
            current[idx] = value[0]
            store[target.name] = current
        elif isinstance(target, ast.PartSelect):
            msb = self._const_eval(target.msb, ctx, allow_signals=False)
            lsb = self._const_eval(target.lsb, ctx, allow_signals=False)
            current = list(self._store_lookup(target.name, store, env, ctx,
                                              always, targets, target.line))
            fitted = _fit(value, msb - lsb + 1, self)
            for offset, net in enumerate(fitted):
                current[lsb + offset] = net
            store[target.name] = current
        elif isinstance(target, ast.Concat):
            # Verilog concat targets are MSB-first; distribute from the top.
            pos = len(value)
            for part in target.parts:
                pw = self._target_width(part, ctx)
                self._proc_store(part, value[pos - pw : pos], store, env, ctx,
                                 always, targets)
                pos -= pw
        else:
            raise SynthesisError(f"invalid assignment target {target!r}")

    def _store_lookup(self, name: str, store: Dict[str, List[int]],
                      env: _ProcEnv, ctx: _ModuleCtx, always: ast.Always,
                      targets: Set[str], line: int) -> List[int]:
        """Value a partial store should start from (RMW semantics)."""
        if name in store:
            return store[name]
        if store is env.nba:
            # Pending NBA partial writes start from the register's Q value.
            if name in ctx.bits:
                return ctx.bits[name]
        return self._proc_lookup(name, env, ctx, always, targets, line)

    def _exec_if(self, stmt: ast.If, env: _ProcEnv, ctx: _ModuleCtx,
                 always: ast.Always, targets: Set[str]) -> None:
        cond = self._truthy(stmt.cond, ctx, (env, always, targets))
        if cond == CONST1:
            self._exec_stmt(stmt.then_stmt, env, ctx, always, targets)
            return
        if cond == CONST0:
            if stmt.else_stmt is not None:
                self._exec_stmt(stmt.else_stmt, env, ctx, always, targets)
            return
        then_env = env.copy()
        else_env = env.copy()
        self._exec_stmt(stmt.then_stmt, then_env, ctx, always, targets)
        if stmt.else_stmt is not None:
            self._exec_stmt(stmt.else_stmt, else_env, ctx, always, targets)
        self._merge(cond, then_env, else_env, env, ctx, always, targets,
                    stmt.line)

    def _merge(self, cond: int, then_env: _ProcEnv, else_env: _ProcEnv,
               out_env: _ProcEnv, ctx: _ModuleCtx, always: ast.Always,
               targets: Set[str], line: int) -> None:
        for store_name in ("cur", "nba"):
            then_store: Dict[str, List[int]] = getattr(then_env, store_name)
            else_store: Dict[str, List[int]] = getattr(else_env, store_name)
            out_store: Dict[str, List[int]] = getattr(out_env, store_name)
            for name in sorted(set(then_store) | set(else_store)):
                tval = self._branch_value(name, then_store, out_env, ctx,
                                          always, targets, line, store_name)
                eval_ = self._branch_value(name, else_store, out_env, ctx,
                                           always, targets, line, store_name)
                out_store[name] = [
                    self._mux(cond, t, e) for t, e in zip(tval, eval_)
                ]

    def _branch_value(self, name: str, store: Dict[str, List[int]],
                      out_env: _ProcEnv, ctx: _ModuleCtx, always: ast.Always,
                      targets: Set[str], line: int,
                      store_name: str) -> List[int]:
        if name in store:
            return store[name]
        outer: Dict[str, List[int]] = getattr(out_env, store_name)
        if name in outer:
            return outer[name]
        if store_name == "nba":
            if name in ctx.bits:
                return ctx.bits[name]  # hold Q
        return self._proc_lookup(name, out_env, ctx, always, targets, line)

    def _exec_for(self, stmt: ast.For, env: _ProcEnv, ctx: _ModuleCtx,
                  always: ast.Always, targets: Set[str]) -> None:
        if not isinstance(stmt.init.target, ast.Ident):
            raise SynthesisError("for-loop variable must be a plain identifier")
        var = stmt.init.target.name
        ctx.consts[var] = self._const_eval(stmt.init.rhs, ctx)
        iterations = 0
        try:
            while self._const_eval(stmt.cond, ctx):
                self._exec_stmt(stmt.body, env, ctx, always, targets)
                ctx.consts[var] = self._const_eval(stmt.step.rhs, ctx)
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise SynthesisError(
                        f"for loop over {var!r} exceeds "
                        f"{_MAX_LOOP_ITERATIONS} iterations"
                    )
        finally:
            del ctx.consts[var]

    # -- targets ---------------------------------------------------------------

    def _target_width(self, target: ast.Expr, ctx: _ModuleCtx) -> int:
        if isinstance(target, ast.Ident):
            if target.name not in ctx.widths:
                raise SynthesisError(
                    f"module {ctx.module.name}: undeclared signal "
                    f"{target.name!r} (line {target.line})"
                )
            return ctx.widths[target.name]
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            msb = self._const_eval(target.msb, ctx, allow_signals=False)
            lsb = self._const_eval(target.lsb, ctx, allow_signals=False)
            return msb - lsb + 1
        if isinstance(target, ast.Concat):
            return sum(self._target_width(p, ctx) for p in target.parts)
        raise SynthesisError(f"invalid assignment target {target!r}")

    def _drive_target(self, target: ast.Expr, value: List[int],
                      ctx: _ModuleCtx) -> None:
        """Continuous drive of ``value`` onto a structural target."""
        if isinstance(target, ast.Ident):
            nets = ctx.bits.get(target.name)
            if nets is None:
                raise SynthesisError(
                    f"module {ctx.module.name}: undeclared signal "
                    f"{target.name!r} (line {target.line})"
                )
            fitted = _fit(value, len(nets), self)
            for dst, src in zip(nets, fitted):
                self._netlist.add_gate_to(GateType.BUF, dst, (src,))
        elif isinstance(target, ast.BitSelect):
            idx = self._const_eval(target.index, ctx, allow_signals=False)
            nets = ctx.bits[target.name]
            self._netlist.add_gate_to(GateType.BUF, nets[idx], (value[0],))
        elif isinstance(target, ast.PartSelect):
            msb = self._const_eval(target.msb, ctx, allow_signals=False)
            lsb = self._const_eval(target.lsb, ctx, allow_signals=False)
            nets = ctx.bits[target.name]
            fitted = _fit(value, msb - lsb + 1, self)
            for offset, src in enumerate(fitted):
                self._netlist.add_gate_to(GateType.BUF, nets[lsb + offset],
                                          (src,))
        elif isinstance(target, ast.Concat):
            pos = len(value)
            for part in target.parts:
                pw = self._target_width(part, ctx)
                self._drive_target(part, value[pos - pw : pos], ctx)
                pos -= pw
        else:
            raise SynthesisError(f"invalid assignment target {target!r}")

    # -- constant evaluation -----------------------------------------------------

    def _const_eval(self, expr: ast.Expr, ctx: _ModuleCtx,
                    allow_signals: bool = False) -> int:
        """Evaluate a compile-time-constant expression to a Python int."""
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Ident):
            if expr.name in ctx.consts:
                return ctx.consts[expr.name]
            raise SynthesisError(
                f"module {ctx.module.name}: {expr.name!r} is not a constant "
                f"(line {expr.line})"
            )
        if isinstance(expr, ast.Unary):
            val = self._const_eval(expr.operand, ctx, allow_signals)
            if expr.op == "-":
                return -val
            if expr.op == "+":
                return val
            if expr.op == "~":
                return ~val
            if expr.op == "!":
                return 0 if val else 1
            raise SynthesisError(
                f"operator {expr.op!r} not supported in constant expressions"
            )
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left, ctx, allow_signals)
            right = self._const_eval(expr.right, ctx, allow_signals)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b,
                "%": lambda a, b: a % b,
                "**": lambda a, b: a ** b,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "<": lambda a, b: int(a < b),
                "<=": lambda a, b: int(a <= b),
                ">": lambda a, b: int(a > b),
                ">=": lambda a, b: int(a >= b),
                "==": lambda a, b: int(a == b),
                "!=": lambda a, b: int(a != b),
                "&&": lambda a, b: int(bool(a) and bool(b)),
                "||": lambda a, b: int(bool(a) or bool(b)),
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op not in ops:
                raise SynthesisError(
                    f"operator {expr.op!r} not supported in constant "
                    "expressions"
                )
            return ops[expr.op](left, right)
        if isinstance(expr, ast.Ternary):
            cond = self._const_eval(expr.cond, ctx, allow_signals)
            branch = expr.if_true if cond else expr.if_false
            return self._const_eval(branch, ctx, allow_signals)
        raise SynthesisError(f"expression is not constant: {expr!r}")

    def _const_bits(self, value: int, width: int) -> List[int]:
        value &= (1 << width) - 1
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    # -- expression evaluation ------------------------------------------------

    def _natural_width(self, expr: ast.Expr, ctx: _ModuleCtx) -> Optional[int]:
        """Self-determined width; None for unsized (flexible) constants."""
        if isinstance(expr, ast.Number):
            return expr.width
        if isinstance(expr, ast.CaseLabelWild):
            return len(expr.bits)
        if isinstance(expr, ast.Ident):
            if expr.name in ctx.consts and expr.name not in ctx.widths:
                return None
            if expr.name in ctx.widths:
                return ctx.widths[expr.name]
            raise SynthesisError(
                f"module {ctx.module.name}: undeclared signal {expr.name!r} "
                f"(line {expr.line})"
            )
        if isinstance(expr, ast.BitSelect):
            return 1
        if isinstance(expr, ast.PartSelect):
            msb = self._const_eval(expr.msb, ctx, allow_signals=False)
            lsb = self._const_eval(expr.lsb, ctx, allow_signals=False)
            return msb - lsb + 1
        if isinstance(expr, ast.Concat):
            total = 0
            for part in expr.parts:
                pw = self._natural_width(part, ctx)
                if pw is None:
                    raise SynthesisError(
                        "unsized constants are not allowed inside "
                        f"concatenations (line {expr.line})"
                    )
                total += pw
            return total
        if isinstance(expr, ast.Repeat):
            count = self._const_eval(expr.count, ctx)
            inner = self._natural_width(expr.value, ctx)
            if inner is None:
                raise SynthesisError(
                    "unsized constants are not allowed inside replications "
                    f"(line {expr.line})"
                )
            return count * inner
        if isinstance(expr, ast.Unary):
            if expr.op in ("~", "-", "+"):
                return self._natural_width(expr.operand, ctx)
            return 1  # reductions and !
        if isinstance(expr, ast.Binary):
            op = expr.op
            if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=",
                      "&&", "||"):
                return 1
            if op in ("<<", ">>", "<<<", ">>>"):
                return self._natural_width(expr.left, ctx)
            lw = self._natural_width(expr.left, ctx)
            rw = self._natural_width(expr.right, ctx)
            if lw is None:
                return rw
            if rw is None:
                return lw
            return max(lw, rw)
        if isinstance(expr, ast.Ternary):
            lw = self._natural_width(expr.if_true, ctx)
            rw = self._natural_width(expr.if_false, ctx)
            if lw is None:
                return rw
            if rw is None:
                return lw
            return max(lw, rw)
        raise SynthesisError(f"cannot size expression {expr!r}")

    def _eval(self, expr: ast.Expr, ctx: _ModuleCtx, proc, width: int
              ) -> List[int]:
        """Evaluate ``expr`` to exactly ``width`` bit nets (LSB first).

        ``proc`` is None for structural context, or a tuple
        ``(env, always, targets)`` inside an always block.
        """
        bits = self._eval_natural(expr, ctx, proc, width)
        return _fit(bits, width, self)

    def _eval_natural(self, expr: ast.Expr, ctx: _ModuleCtx, proc,
                      ctx_width: int) -> List[int]:
        if isinstance(expr, ast.Number):
            width = expr.width if expr.width is not None else ctx_width
            return self._const_bits(expr.value, max(width, 1))
        if isinstance(expr, ast.CaseLabelWild):
            raise SynthesisError(
                f"wildcard literal outside casez (line {expr.line})"
            )
        if isinstance(expr, ast.Ident):
            return list(self._read_signal(expr.name, ctx, proc, expr.line))
        if isinstance(expr, ast.BitSelect):
            base = self._read_signal(expr.name, ctx, proc, expr.line)
            try:
                idx = self._const_eval(expr.index, ctx)
            except SynthesisError:
                return [self._dynamic_select(base, expr.index, ctx, proc)]
            if not 0 <= idx < len(base):
                raise SynthesisError(
                    f"bit index {idx} out of range for {expr.name!r} "
                    f"(line {expr.line})"
                )
            return [base[idx]]
        if isinstance(expr, ast.PartSelect):
            base = self._read_signal(expr.name, ctx, proc, expr.line)
            msb = self._const_eval(expr.msb, ctx)
            lsb = self._const_eval(expr.lsb, ctx)
            if not (0 <= lsb <= msb < len(base)):
                raise SynthesisError(
                    f"part select [{msb}:{lsb}] out of range for "
                    f"{expr.name!r} (line {expr.line})"
                )
            return base[lsb : msb + 1]
        if isinstance(expr, ast.Concat):
            bits: List[int] = []
            for part in reversed(expr.parts):  # MSB-first in source
                pw = self._natural_width(part, ctx)
                assert pw is not None
                bits.extend(self._eval(part, ctx, proc, pw))
            return bits
        if isinstance(expr, ast.Repeat):
            count = self._const_eval(expr.count, ctx)
            inner_w = self._natural_width(expr.value, ctx)
            assert inner_w is not None
            inner = self._eval(expr.value, ctx, proc, inner_w)
            return inner * count
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, ctx, proc, ctx_width)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, ctx, proc, ctx_width)
        if isinstance(expr, ast.Ternary):
            cond = self._truthy(expr.cond, ctx, proc)
            tw = self._natural_width(expr.if_true, ctx)
            fw = self._natural_width(expr.if_false, ctx)
            width = max(w for w in (tw, fw, ctx_width) if w is not None)
            tbits = self._eval(expr.if_true, ctx, proc, width)
            fbits = self._eval(expr.if_false, ctx, proc, width)
            return [self._mux(cond, t, f) for t, f in zip(tbits, fbits)]
        raise SynthesisError(f"cannot evaluate expression {expr!r}")

    def _read_signal(self, name: str, ctx: _ModuleCtx, proc,
                     line: int) -> List[int]:
        if proc is not None:
            env, always, targets = proc
            return self._proc_lookup(name, env, ctx, always, targets, line)
        if name in ctx.consts and name not in ctx.widths:
            return self._const_bits(ctx.consts[name], _DEFAULT_INT_WIDTH)
        if name in ctx.consts:
            return self._const_bits(ctx.consts[name], ctx.widths[name])
        if name not in ctx.bits:
            raise SynthesisError(
                f"module {ctx.module.name}: undeclared signal {name!r} "
                f"(line {line})"
            )
        return ctx.bits[name]

    def _dynamic_select(self, base: List[int], index: ast.Expr,
                        ctx: _ModuleCtx, proc) -> int:
        """Variable bit select: mux tree over the index bits."""
        iw = self._natural_width(index, ctx) or _DEFAULT_INT_WIDTH
        needed = max(1, (len(base) - 1).bit_length())
        idx_bits = self._eval(index, ctx, proc, max(iw, needed))
        layer = list(base)
        for level in range(needed):
            sel = idx_bits[level]
            nxt = []
            for i in range(0, len(layer), 2):
                lo = layer[i]
                hi = layer[i + 1] if i + 1 < len(layer) else CONST0
                nxt.append(self._mux(sel, hi, lo))
            layer = nxt
        return layer[0]

    def _eval_unary(self, expr: ast.Unary, ctx: _ModuleCtx, proc,
                    ctx_width: int) -> List[int]:
        op = expr.op
        if op in ("~", "-", "+"):
            ow = self._natural_width(expr.operand, ctx)
            width = max(w for w in (ow, ctx_width) if w is not None)
            bits = self._eval(expr.operand, ctx, proc, width)
            if op == "~":
                return [self._not(b) for b in bits]
            if op == "+":
                return bits
            zero = [CONST0] * width
            return self._subtract(zero, bits)
        ow = self._natural_width(expr.operand, ctx) or 1
        bits = self._eval(expr.operand, ctx, proc, ow)
        if op == "&":
            return [self._and_tree(bits)]
        if op == "|":
            return [self._or_tree(bits)]
        if op == "^":
            return [self._xor_tree(bits)]
        if op == "~&":
            return [self._not(self._and_tree(bits))]
        if op == "~|":
            return [self._not(self._or_tree(bits))]
        if op in ("~^", "^~"):
            return [self._not(self._xor_tree(bits))]
        if op == "!":
            return [self._not(self._or_tree(bits))]
        raise SynthesisError(f"unknown unary operator {op!r}")

    def _eval_binary(self, expr: ast.Binary, ctx: _ModuleCtx, proc,
                     ctx_width: int) -> List[int]:
        op = expr.op
        if op in ("&&", "||"):
            left = self._truthy(expr.left, ctx, proc)
            right = self._truthy(expr.right, ctx, proc)
            if op == "&&":
                return [self._and(left, right)]
            return [self._or(left, right)]
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            lw = self._natural_width(expr.left, ctx)
            rw = self._natural_width(expr.right, ctx)
            width = max(w for w in (lw, rw) if w is not None) if (
                lw is not None or rw is not None) else _DEFAULT_INT_WIDTH
            left = self._eval(expr.left, ctx, proc, width)
            right = self._eval(expr.right, ctx, proc, width)
            if op in ("==", "==="):
                return [self._equal(left, right)]
            if op in ("!=", "!=="):
                return [self._not(self._equal(left, right))]
            if op == "<":
                return [self._less_than(left, right)]
            if op == ">":
                return [self._less_than(right, left)]
            if op == "<=":
                return [self._not(self._less_than(right, left))]
            return [self._not(self._less_than(left, right))]
        if op in ("<<", ">>", "<<<", ">>>"):
            lw = self._natural_width(expr.left, ctx)
            width = max(w for w in (lw, ctx_width) if w is not None)
            left = self._eval(expr.left, ctx, proc, width)
            try:
                amount = self._const_eval(expr.right, ctx)
            except SynthesisError:
                return self._barrel_shift(left, expr.right, op, ctx, proc)
            return _const_shift(left, amount, op)
        # Arithmetic / bitwise: operands at the context width.
        lw = self._natural_width(expr.left, ctx)
        rw = self._natural_width(expr.right, ctx)
        width = max(w for w in (lw, rw, ctx_width) if w is not None)
        left = self._eval(expr.left, ctx, proc, width)
        right = self._eval(expr.right, ctx, proc, width)
        if op == "&":
            return [self._and(a, b) for a, b in zip(left, right)]
        if op == "|":
            return [self._or(a, b) for a, b in zip(left, right)]
        if op == "^":
            return [self._xor(a, b) for a, b in zip(left, right)]
        if op in ("~^", "^~"):
            return [self._not(self._xor(a, b)) for a, b in zip(left, right)]
        if op == "+":
            return self._add(left, right)
        if op == "-":
            return self._subtract(left, right)
        if op == "*":
            return self._multiply(left, right)
        if op in ("/", "%"):
            try:
                divisor = self._const_eval(expr.right, ctx)
            except SynthesisError:
                raise SynthesisError(
                    f"division by a non-constant is not supported "
                    f"(line {expr.line})"
                ) from None
            if divisor <= 0 or (divisor & (divisor - 1)) != 0:
                raise SynthesisError(
                    f"only power-of-two constant divisors are supported "
                    f"(line {expr.line})"
                )
            shift = divisor.bit_length() - 1
            if op == "/":
                return _const_shift(left, shift, ">>")
            return left[:shift] + [CONST0] * (len(left) - shift)
        raise SynthesisError(f"unknown binary operator {op!r}")

    def _truthy(self, expr: ast.Expr, ctx: _ModuleCtx, proc) -> int:
        width = self._natural_width(expr, ctx) or 1
        bits = self._eval(expr, ctx, proc, width)
        return self._or_tree(bits)

    # -- gate builders with local constant folding ------------------------------

    def _emit(self, gtype: GateType, inputs: Sequence[int]) -> int:
        out = self._netlist.add_gate(gtype, inputs)
        self._netlist.regions[out] = self._current_prefix
        return out

    def _not(self, a: int) -> int:
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        cached = self._not_cache.get(a)
        if cached is not None:
            return cached
        out = self._emit(GateType.NOT, (a,))
        self._not_cache[a] = out
        self._not_cache[out] = a
        return out

    def _and(self, a: int, b: int) -> int:
        if a == CONST0 or b == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        if self._not_cache.get(a) == b:
            return CONST0
        return self._emit(GateType.AND, (a, b))

    def _or(self, a: int, b: int) -> int:
        if a == CONST1 or b == CONST1:
            return CONST1
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == b:
            return a
        if self._not_cache.get(a) == b:
            return CONST1
        return self._emit(GateType.OR, (a, b))

    def _xor(self, a: int, b: int) -> int:
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == CONST1:
            return self._not(b)
        if b == CONST1:
            return self._not(a)
        if a == b:
            return CONST0
        if self._not_cache.get(a) == b:
            return CONST1
        return self._emit(GateType.XOR, (a, b))

    def _mux(self, sel: int, if_true: int, if_false: int) -> int:
        if sel == CONST1 or if_true == if_false:
            return if_true
        if sel == CONST0:
            return if_false
        if if_true == CONST1 and if_false == CONST0:
            return sel
        if if_true == CONST0 and if_false == CONST1:
            return self._not(sel)
        nsel = self._not(sel)
        return self._or(self._and(sel, if_true), self._and(nsel, if_false))

    def _and_tree(self, bits: Sequence[int]) -> int:
        result = CONST1
        for bit in bits:
            result = self._and(result, bit)
        return result

    def _or_tree(self, bits: Sequence[int]) -> int:
        result = CONST0
        for bit in bits:
            result = self._or(result, bit)
        return result

    def _xor_tree(self, bits: Sequence[int]) -> int:
        result = CONST0
        for bit in bits:
            result = self._xor(result, bit)
        return result

    def _equal(self, left: List[int], right: List[int]) -> int:
        terms = [self._not(self._xor(a, b)) for a, b in zip(left, right)]
        return self._and_tree(terms)

    def _less_than(self, left: List[int], right: List[int]) -> int:
        """Unsigned ``left < right`` via an LSB-to-MSB ripple comparator."""
        lt = CONST0
        for a, b in zip(left, right):
            eq = self._not(self._xor(a, b))
            lt = self._or(self._and(self._not(a), b), self._and(eq, lt))
        return lt

    def _add(self, left: List[int], right: List[int]) -> List[int]:
        carry = CONST0
        out: List[int] = []
        for a, b in zip(left, right):
            axb = self._xor(a, b)
            out.append(self._xor(axb, carry))
            carry = self._or(self._and(a, b), self._and(axb, carry))
        return out

    def _subtract(self, left: List[int], right: List[int]) -> List[int]:
        carry = CONST1
        out: List[int] = []
        for a, b in zip(left, right):
            nb = self._not(b)
            axb = self._xor(a, nb)
            out.append(self._xor(axb, carry))
            carry = self._or(self._and(a, nb), self._and(axb, carry))
        return out

    def _multiply(self, left: List[int], right: List[int]) -> List[int]:
        width = len(left)
        acc = [CONST0] * width
        for i, bbit in enumerate(right):
            if bbit == CONST0:
                continue
            partial = [CONST0] * i + left[: width - i]
            partial = [self._and(p, bbit) for p in partial]
            acc = self._add(acc, partial)
        return acc

    def _barrel_shift(self, value: List[int], amount_expr: ast.Expr, op: str,
                      ctx: _ModuleCtx, proc) -> List[int]:
        width = len(value)
        levels = max(1, (width - 1).bit_length())
        aw = self._natural_width(amount_expr, ctx) or _DEFAULT_INT_WIDTH
        amount = self._eval(amount_expr, ctx, proc, max(aw, levels))
        current = list(value)
        for level in range(levels):
            shifted = _const_shift(current, 1 << level, op)
            sel = amount[level]
            current = [self._mux(sel, s, c) for s, c in zip(shifted, current)]
        # Any higher amount bits set -> result is all zeros.
        high = self._or_tree(amount[levels:])
        if high != CONST0:
            nhigh = self._not(high)
            current = [self._and(c, nhigh) for c in current]
        return current


def _fit(bits: List[int], width: int, elab: Elaborator) -> List[int]:
    """Zero-extend or truncate ``bits`` to ``width``."""
    if len(bits) == width:
        return bits
    if len(bits) > width:
        return bits[:width]
    return bits + [CONST0] * (width - len(bits))


def _const_shift(bits: List[int], amount: int, op: str) -> List[int]:
    width = len(bits)
    if amount >= width:
        return [CONST0] * width
    if op in ("<<", "<<<"):
        return [CONST0] * amount + bits[: width - amount]
    return bits[amount:] + [CONST0] * amount


def _bit_name(signal: str, index: int, width: int) -> str:
    return signal if width == 1 else f"{signal}[{index}]"


def _port_map(child: ast.Module, inst: ast.Instance
              ) -> Dict[str, Optional[ast.Expr]]:
    result: Dict[str, Optional[ast.Expr]] = {
        name: None for name in child.port_order
    }
    positional = all(conn.name is None for conn in inst.connections)
    if positional and inst.connections:
        for idx, conn in enumerate(inst.connections):
            if idx >= len(child.port_order):
                raise SynthesisError(
                    f"instance {inst.inst_name!r}: too many connections for "
                    f"module {child.name!r}"
                )
            result[child.port_order[idx]] = conn.expr
    else:
        for conn in inst.connections:
            if conn.name is None:
                raise SynthesisError(
                    f"instance {inst.inst_name!r} mixes named and positional "
                    "connections"
                )
            if conn.name not in result:
                raise SynthesisError(
                    f"instance {inst.inst_name!r} connects unknown port "
                    f"{conn.name!r} of module {child.name!r}"
                )
            result[conn.name] = conn.expr
    return result


def _case_to_if(case: ast.Case) -> ast.Stmt:
    """Desugar a case statement into a priority if/else chain."""
    default_stmt: Optional[ast.Stmt] = None
    arms: List[Tuple[List[ast.Expr], ast.Stmt]] = []
    for item in case.items:
        if item.is_default:
            default_stmt = item.stmt
        else:
            arms.append((item.labels, item.stmt))

    result: Optional[ast.Stmt] = default_stmt
    if result is None:
        result = ast.Block(stmts=[], line=case.line)
    for labels, stmt in reversed(arms):
        cond: Optional[ast.Expr] = None
        for label in labels:
            term = _case_match_expr(case.selector, label)
            cond = term if cond is None else ast.Binary(
                op="||", left=cond, right=term, line=case.line
            )
        assert cond is not None
        result = ast.If(cond=cond, then_stmt=stmt, else_stmt=result,
                        line=stmt.line)
    return result


def _case_match_expr(selector: ast.Expr, label: ast.Expr) -> ast.Expr:
    if isinstance(label, ast.CaseLabelWild):
        # Compare only the non-wildcard bits: (sel & mask) == value.
        mask = int("".join("0" if b == "?" else "1" for b in label.bits), 2)
        value = int("".join("0" if b == "?" else b for b in label.bits), 2)
        width = len(label.bits)
        masked = ast.Binary(
            op="&",
            left=selector,
            right=ast.Number(value=mask, width=width, base="b"),
            line=label.line,
        )
        return ast.Binary(
            op="==",
            left=masked,
            right=ast.Number(value=value, width=width, base="b"),
            line=label.line,
        )
    return ast.Binary(op="==", left=selector, right=label, line=label.line)


def synthesize(design, root: Optional[str] = None,
               name: Optional[str] = None,
               do_optimize: bool = True) -> Netlist:
    """Synthesize ``root`` (default: the design top) to a flat gate netlist.

    With ``do_optimize`` the standard cleanup pipeline (constant propagation,
    structural hashing, dead-code removal) runs afterwards — the equivalent of
    the synthesis flags the paper relies on to delete redundant constraints.
    """
    netlist = Elaborator(design).synthesize(root, name)
    if do_optimize:
        from repro.synth.opt import optimize

        netlist = optimize(netlist)
    return netlist
