"""Combinational equivalence checking via miters.

Used to validate the optimizer and the constraint-emission round trip with a
proof rather than random simulation: two netlists are combined into a miter
(pairwise XOR of outputs), and the ATPG search engine is reused as the
decision procedure — a miter output can be justified to 1 if and only if the
circuits differ (the classic ATPG-as-SAT duality).

Sequential designs are checked combinationally: flip-flops are cut into
pseudo PI/PO pairs, so equivalence means "same next-state and output logic
given identical current state", which is exactly what the optimizer must
preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.synth.netlist import CONST0, CONST1, GateType, Netlist


@dataclass
class EquivResult:
    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None  # PI name -> bit
    mismatched_output: Optional[str] = None
    checked_outputs: int = 0
    proved_outputs: int = 0


class EquivError(Exception):
    """Raised when the netlists cannot be compared or a proof times out."""


def _comb_view(netlist: Netlist) -> Tuple[Netlist, List[str]]:
    """Copy a netlist with every flop cut: Q becomes a PI named
    ``<q>$state``, D becomes a PO named ``<q>$next``."""
    view = Netlist(netlist.name + "$comb")
    mapping: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for pi in netlist.pis:
        mapping[pi] = view.add_pi(netlist.net_name(pi))
    state_names: List[str] = []
    for dff in netlist.dffs():
        name = netlist.net_name(dff.output) + "$state"
        mapping[dff.output] = view.add_pi(name)
        state_names.append(name)
    for gate in netlist.topological_order():
        inputs = tuple(mapping.setdefault(i, view.new_net()) for i
                       in gate.inputs)
        out = view.new_net(netlist.net_name(gate.output))
        mapping[gate.output] = out
        view.add_gate_to(gate.type, out, inputs)
    for net, name in netlist.po_pairs:
        view.add_po(mapping.setdefault(net, view.new_net()), name)
    for dff in netlist.dffs():
        d = dff.inputs[0]
        view.add_po(mapping.setdefault(d, view.new_net()),
                    netlist.net_name(dff.output) + "$next")
    return view, state_names


def build_miter(a: Netlist, b: Netlist) -> Tuple[Netlist, List[str]]:
    """Combine two combinational views over shared PIs; returns the miter
    and the list of per-output XOR PO names."""
    va, _ = _comb_view(a)
    vb, _ = _comb_view(b)

    pis_a = {va.net_name(pi) for pi in va.pis}
    pis_b = {vb.net_name(pi) for pi in vb.pis}
    if pis_a != pis_b:
        raise EquivError(
            f"primary input mismatch: only in A: {sorted(pis_a - pis_b)}; "
            f"only in B: {sorted(pis_b - pis_a)}"
        )
    pos_a = {name for _, name in va.po_pairs}
    pos_b = {name for _, name in vb.po_pairs}
    if pos_a != pos_b:
        raise EquivError(
            f"primary output mismatch: only in A: {sorted(pos_a - pos_b)}; "
            f"only in B: {sorted(pos_b - pos_a)}"
        )

    miter = Netlist(f"miter({a.name},{b.name})")
    mapping_a: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    mapping_b: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for pi in va.pis:
        shared = miter.add_pi(va.net_name(pi))
        mapping_a[pi] = shared
    by_name = {vb.net_name(pi): pi for pi in vb.pis}
    for name, net in by_name.items():
        mapping_b[net] = next(
            p for p in miter.pis if miter.net_name(p) == name
        )

    def copy_gates(view: Netlist, mapping: Dict[int, int]) -> None:
        for gate in view.topological_order():
            inputs = tuple(mapping.setdefault(i, miter.new_net())
                           for i in gate.inputs)
            out = miter.new_net()
            mapping[gate.output] = out
            miter.add_gate_to(gate.type, out, inputs)

    copy_gates(va, mapping_a)
    copy_gates(vb, mapping_b)

    xor_names: List[str] = []
    po_a = dict((name, net) for net, name in va.po_pairs)
    po_b = dict((name, net) for net, name in vb.po_pairs)
    for name in sorted(po_a):
        na = mapping_a.setdefault(po_a[name], miter.new_net())
        nb = mapping_b.setdefault(po_b[name], miter.new_net())
        xor = miter.add_gate(GateType.XOR, (na, nb))
        xor_name = f"diff${name}"
        miter.add_po(xor, xor_name)
        xor_names.append(xor_name)
    return miter, xor_names


def check_equivalence(a: Netlist, b: Netlist,
                      backtrack_limit: int = 50000) -> EquivResult:
    """Prove or refute combinational equivalence of two netlists."""
    from repro.atpg.faults import Fault
    from repro.atpg.podem import Podem
    from repro.atpg.sequential import UnrolledModel

    miter, xor_names = build_miter(a, b)
    model = UnrolledModel(miter, 1)

    checked = 0
    proved = 0
    for net, name in miter.po_pairs:
        checked += 1
        # Justifying 1 at the XOR output == finding a distinguishing input:
        # search for a test for "diff stuck-at-0" (needs good value 1).
        podem = Podem(model, Fault(net, 0), backtrack_limit=backtrack_limit)
        result = podem.run()
        if result.status == "detected":
            vector = {
                miter.net_name(pi): bit
                for pi, bit in result.vectors[0].items()
            }
            return EquivResult(
                equivalent=False,
                counterexample=vector,
                mismatched_output=name[len("diff$"):],
                checked_outputs=checked,
                proved_outputs=proved,
            )
        if result.status == "aborted":
            raise EquivError(
                f"equivalence undecided for output {name!r}: backtrack "
                "limit exceeded"
            )
        proved += 1
    return EquivResult(equivalent=True, checked_outputs=checked,
                       proved_outputs=proved)
