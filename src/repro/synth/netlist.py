"""Gate-level netlist intermediate representation.

A netlist is a set of single-output gates over integer net ids.  Net 0 is
constant 0 and net 1 is constant 1 by convention.  Primary inputs are nets
with no driving gate that appear in ``pis``; D flip-flops are ``DFF`` gates
whose output is the Q net and whose single input is the D net (single
implicit clock — the designs this substrate targets are single-clock with
synchronous or foldable asynchronous reset).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


class NetlistError(Exception):
    """Raised for malformed netlists (multiple drivers, missing nets...)."""


class GateType(enum.Enum):
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"
    DFF = "dff"

    @property
    def is_combinational(self) -> bool:
        return self is not GateType.DFF


# Gate types whose semantics are invariant under input permutation.
SYMMETRIC_TYPES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
     GateType.XOR, GateType.XNOR}
)


@dataclass
class Gate:
    type: GateType
    output: int
    inputs: Tuple[int, ...]

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if self.type in (GateType.NOT, GateType.BUF, GateType.DFF):
            if len(self.inputs) != 1:
                raise NetlistError(
                    f"{self.type.value} gate must have exactly one input"
                )
        elif len(self.inputs) < 1:
            raise NetlistError(f"{self.type.value} gate needs inputs")


CONST0 = 0
CONST1 = 1


class Netlist:
    """Mutable gate-level netlist.

    Nets are dense integer ids; ``net_name(net)`` gives a best-effort
    hierarchical name for diagnostics and fault reporting.
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self._names: List[Optional[str]] = ["const0", "const1"]
        self.gates: List[Gate] = []
        self.pis: List[int] = []
        self.pos: List[int] = []
        self.po_pairs: List[Tuple[int, str]] = []
        self._po_names: Dict[int, str] = {}
        self._driver: Dict[int, Gate] = {}
        # Structural generation counter: bumped by every mutation that can
        # change fanout or level results, invalidating the caches below.
        self._generation = 0
        self._fanouts_cache: Optional[Tuple[int, Dict[int, List[Gate]]]] = None
        self._levels_cache: Optional[Tuple[int, Dict[int, int]]] = None

    # -- construction --------------------------------------------------------

    def new_net(self, name: Optional[str] = None) -> int:
        net = len(self._names)
        self._names.append(name)
        return net

    def add_pi(self, name: str) -> int:
        net = self.new_net(name)
        self.pis.append(net)
        self._generation += 1
        return net

    def add_po(self, net: int, name: str) -> None:
        self.pos.append(net)
        self.po_pairs.append((net, name))
        # After optimization several POs may alias one net; keep the first
        # name for net-keyed lookups, the full mapping lives in po_pairs.
        self._po_names.setdefault(net, name)

    def add_gate(self, gtype: GateType, inputs: Sequence[int],
                 name: Optional[str] = None) -> int:
        """Create a gate with a fresh output net; returns the output net."""
        out = self.new_net(name)
        gate = Gate(type=gtype, output=out, inputs=tuple(inputs))
        self.gates.append(gate)
        self._driver[out] = gate
        self._generation += 1
        return out

    def add_gate_to(self, gtype: GateType, output: int,
                    inputs: Sequence[int]) -> Gate:
        """Create a gate driving an existing net."""
        if output in self._driver:
            raise NetlistError(
                f"net {output} ({self.net_name(output)}) has multiple drivers"
            )
        if output in (CONST0, CONST1):
            raise NetlistError("cannot drive a constant net")
        gate = Gate(type=gtype, output=output, inputs=tuple(inputs))
        self.gates.append(gate)
        self._driver[output] = gate
        self._generation += 1
        return gate

    # -- queries -------------------------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self._names)

    def net_name(self, net: int) -> str:
        name = self._names[net] if net < len(self._names) else None
        return name if name is not None else f"n{net}"

    def set_net_name(self, net: int, name: str) -> None:
        self._names[net] = name

    def po_name(self, net: int) -> str:
        return self._po_names.get(net, self.net_name(net))

    def driver(self, net: int) -> Optional[Gate]:
        return self._driver.get(net)

    def fanouts(self) -> Dict[int, List[Gate]]:
        """Map net -> gates reading it.

        Cached against the structural generation counter (invalidated by
        ``add_pi``/``add_gate``/``add_gate_to``); treat the returned dict
        as read-only.
        """
        cached = self._fanouts_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        table: Dict[int, List[Gate]] = {}
        for gate in self.gates:
            for inp in gate.inputs:
                table.setdefault(inp, []).append(gate)
        self._fanouts_cache = (self._generation, table)
        return table

    def dffs(self) -> List[Gate]:
        return [g for g in self.gates if g.type is GateType.DFF]

    def combinational_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.type is not GateType.DFF]

    def gate_count(self, include_buffers: bool = False) -> int:
        """Number of combinational gates (the paper's "gates" metric)."""
        count = 0
        for gate in self.gates:
            if gate.type is GateType.DFF:
                continue
            if gate.type is GateType.BUF and not include_buffers:
                continue
            count += 1
        return count

    def validate(self) -> None:
        """Check structural sanity; raises NetlistError on problems."""
        driven: Set[int] = set()
        for gate in self.gates:
            if gate.output in driven:
                raise NetlistError(
                    f"net {gate.output} ({self.net_name(gate.output)}) has "
                    "multiple drivers"
                )
            driven.add(gate.output)
            for inp in gate.inputs:
                if inp >= self.num_nets:
                    raise NetlistError(f"gate reads undeclared net {inp}")
        pi_set = set(self.pis)
        for net in range(2, self.num_nets):
            if net not in driven and net not in pi_set:
                # Floating nets are allowed only if nothing reads them.
                pass
        for gate in self.gates:
            for inp in gate.inputs:
                if inp not in driven and inp not in pi_set and inp > 1:
                    raise NetlistError(
                        f"gate output {self.net_name(gate.output)} reads "
                        f"floating net {self.net_name(inp)}"
                    )
        for net in self.pos:
            if net not in driven and net not in pi_set and net > 1:
                raise NetlistError(
                    f"primary output {self.po_name(net)} is floating"
                )

    def fanout_adjacency(self, through_dffs: bool = True
                         ) -> Dict[int, List[int]]:
        """Map net -> output nets of the gates reading it (one step of
        fanout).  With ``through_dffs`` the D->Q edge of every flip-flop is
        included, so reachability over this adjacency is *sequential*
        fanout."""
        adj: Dict[int, List[int]] = {}
        for gate in self.gates:
            if gate.type is GateType.DFF and not through_dffs:
                continue
            for inp in gate.inputs:
                adj.setdefault(inp, []).append(gate.output)
        return adj

    def fanout_cone(self, nets, through_dffs: bool = True) -> Set[int]:
        """Transitive fanout of a net (or collection of nets), including the
        nets themselves.  This is the set of nets a stuck-at fault on any of
        ``nets`` can possibly influence."""
        if isinstance(nets, int):
            nets = (nets,)
        adj = self.fanout_adjacency(through_dffs=through_dffs)
        seen: Set[int] = set(nets)
        stack = list(seen)
        while stack:
            net = stack.pop()
            for down in adj.get(net, ()):
                if down not in seen:
                    seen.add(down)
                    stack.append(down)
        return seen

    def levels(self, order: Optional[List[Gate]] = None) -> Dict[int, int]:
        """Combinational depth of each net within a frame: constants, PIs
        and flip-flop outputs sit at level 0, a gate output one above its
        deepest input.

        The result is identical for every valid topological ``order``, so
        it is cached against the structural generation counter; treat the
        returned dict as read-only.
        """
        cached = self._levels_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        level: Dict[int, int] = {CONST0: 0, CONST1: 0}
        for pi in self.pis:
            level[pi] = 0
        for dff in self.dffs():
            level[dff.output] = 0
        for gate in order if order is not None else self.topological_order():
            level[gate.output] = 1 + max(
                (level.get(i, 0) for i in gate.inputs), default=0
            )
        self._levels_cache = (self._generation, level)
        return level

    def levelized_order(self) -> List[Gate]:
        """Combinational gates sorted by level (stable within a level).

        Level-sorting preserves topological validity — a gate's level is
        strictly above all its inputs' — while grouping gates of equal
        depth, which keeps generated straight-line code cache-friendly.
        """
        order = self.topological_order()
        level = self.levels(order)
        return sorted(order, key=lambda g: level[g.output])

    def topological_order(self) -> List[Gate]:
        """Combinational gates in topological order (DFF outputs, PIs and
        constants are sources).  Raises on combinational cycles."""
        driver = self._driver
        order: List[Gate] = []
        state: Dict[int, int] = {}  # net -> 0 visiting, 1 done

        sources = set(self.pis) | {CONST0, CONST1}
        for gate in self.gates:
            if gate.type is GateType.DFF:
                sources.add(gate.output)

        def visit(net: int) -> None:
            if net in sources or state.get(net) == 1:
                return
            if state.get(net) == 0:
                raise NetlistError(
                    f"combinational cycle through net {self.net_name(net)}"
                )
            gate = driver.get(net)
            if gate is None:
                return  # floating; treated as X by simulators
            state[net] = 0
            for inp in gate.inputs:
                visit(inp)
            state[net] = 1
            order.append(gate)

        for po in self.pos:
            visit(po)
        for dff in self.dffs():
            visit(dff.inputs[0])
        # Any remaining gates (not in the PO/DFF cone) in declaration order.
        emitted = {id(g) for g in order}
        for gate in self.gates:
            if gate.type is not GateType.DFF and id(gate) not in emitted:
                visit(gate.output)
        return order

    def clone(self) -> "Netlist":
        other = Netlist(self.name)
        other._names = list(self._names)
        other.pis = list(self.pis)
        other.pos = list(self.pos)
        other.po_pairs = list(self.po_pairs)
        other._po_names = dict(self._po_names)
        for gate in self.gates:
            other.add_gate_to(gate.type, gate.output, gate.inputs)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, {len(self.pis)} PI, {len(self.pos)} PO, "
            f"{self.gate_count()} gates, {len(self.dffs())} DFF)"
        )
