"""Netlist statistics: the numbers the paper's tables report.

Gate counts, PI/PO counts, flip-flop counts, stuck-at fault population and
sequential depth (longest flop-to-output register chain, the quantity PIERs
exist to reduce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.synth.netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    name: str
    num_pis: int
    num_pos: int
    num_gates: int
    num_dffs: int
    num_faults: int
    sequential_depth: int
    logic_levels: int

    def as_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "PI": self.num_pis,
            "PO": self.num_pos,
            "gates": self.num_gates,
            "DFFs": self.num_dffs,
            "faults": self.num_faults,
            "seq_depth": self.sequential_depth,
            "levels": self.logic_levels,
        }


def logic_levels(netlist: Netlist) -> int:
    """Longest combinational path length, in gates."""
    level: Dict[int, int] = {}
    for pi in netlist.pis:
        level[pi] = 0
    for dff in netlist.dffs():
        level[dff.output] = 0
    best = 0
    for gate in netlist.topological_order():
        lvl = 1 + max((level.get(i, 0) for i in gate.inputs), default=0)
        level[gate.output] = lvl
        best = max(best, lvl)
    return best


def sequential_depth(netlist: Netlist) -> int:
    """Longest acyclic register chain from a PI-fed flop to a PO-observed one.

    Measured on the flop dependency graph: DFF ``a`` depends on DFF ``b`` if
    ``b``'s output is in the combinational cone of ``a``'s D input.  Cycles
    (counters, FSMs) contribute their entry depth only.
    """
    driver = {g.output: g for g in netlist.gates}
    dffs = netlist.dffs()
    dff_of_output = {g.output: g for g in dffs}

    def cone_flops(start_net: int) -> Set[int]:
        """DFF output nets feeding ``start_net`` through combinational logic."""
        found: Set[int] = set()
        seen: Set[int] = set()
        stack = [start_net]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in dff_of_output:
                found.add(net)
                continue
            gate = driver.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        return found

    deps: Dict[int, Set[int]] = {
        dff.output: cone_flops(dff.inputs[0]) for dff in dffs
    }

    depth: Dict[int, int] = {}

    def visit(q: int, trail: Set[int]) -> int:
        if q in depth:
            return depth[q]
        if q in trail:
            return 0  # cycle: entry depth only
        trail.add(q)
        d = 1 + max((visit(dep, trail) for dep in deps[q]), default=0)
        trail.discard(q)
        depth[q] = d
        return d

    best = 0
    observed: Set[int] = set()
    for po in netlist.pos:
        observed |= cone_flops(po)
    for q in observed:
        best = max(best, visit(q, set()))
    return best


def count_faults(netlist: Netlist) -> int:
    """Collapsed stuck-at fault count (delegates to the ATPG fault model)."""
    from repro.atpg.faults import build_fault_list

    return len(build_fault_list(netlist))


def netlist_stats(netlist: Netlist,
                  fault_region: Optional[str] = None) -> NetlistStats:
    """Compute the summary statistics for a netlist.

    ``fault_region`` restricts the fault count to gates created under a
    hierarchical instance prefix (the MUT), matching the paper's per-module
    "Stuck-at Faults" column.
    """
    from repro.atpg.faults import build_fault_list

    faults = build_fault_list(netlist, region=fault_region)
    return NetlistStats(
        name=netlist.name,
        num_pis=len(netlist.pis),
        num_pos=len(netlist.pos),
        num_gates=netlist.gate_count(),
        num_dffs=len(netlist.dffs()),
        num_faults=len(faults),
        sequential_depth=sequential_depth(netlist),
        logic_levels=logic_levels(netlist),
    )
