"""Tokenizer for the synthesizable Verilog subset.

Supports identifiers, keywords, sized/unsized numeric literals, one- and
two-character operators, comments and compiler directives (skipped).  Every
token records its line number so that downstream tools (testability traces,
parse errors) can point back at source locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class LexError(Exception):
    """Raised when the input contains a character sequence we cannot token."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "for",
        "while",
        "posedge",
        "negedge",
        "or",
        "and",
        "nand",
        "nor",
        "xor",
        "xnor",
        "not",
        "buf",
        "signed",
        "function",
        "endfunction",
        "generate",
        "endgenerate",
        "genvar",
    }
)

# Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "<<<",
    ">>>",
    "===",
    "!==",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<<",
    ">>",
    "~&",
    "~|",
    "~^",
    "^~",
    "**",
    "+:",
    "-:",
]

_SINGLE_OPS = set("+-*/%&|^~!<>=?:;,.()[]{}#@")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, line={self.line})"


class Lexer:
    """Single-pass tokenizer.

    Usage::

        tokens = Lexer(source).tokenize()
    """

    def __init__(self, source: str):
        self._src = source
        self._pos = 0
        self._line = 1
        self._n = len(source)

    def tokenize(self) -> List[Token]:
        from repro.obs import counter

        tokens: List[Token] = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                counter("verilog.tokens").inc(len(tokens))
                return tokens

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._src[idx] if idx < self._n else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < self._n and self._src[self._pos] == "\n":
                self._line += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments and compiler directives."""
        while self._pos < self._n:
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < self._n and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self._line
                self._advance(2)
                while self._pos < self._n:
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line)
            elif ch == "`":
                # Compiler directive (`timescale, `define, ...): skip the line.
                while self._pos < self._n and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self._pos >= self._n:
            return Token(TokenKind.EOF, "", self._line)

        ch = self._peek()
        line = self._line

        if ch.isalpha() or ch == "_" or ch == "$":
            return self._lex_ident(line)
        if ch.isdigit() or (ch == "'" and self._peek(1) in "bBdDhHoO"):
            return self._lex_number(line)
        if ch == '"':
            return self._lex_string(line)

        for op in _MULTI_OPS:
            if self._src.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line)
        if ch in _SINGLE_OPS:
            self._advance()
            return Token(TokenKind.OP, ch, line)

        raise LexError(f"unexpected character {ch!r}", line)

    def _lex_ident(self, line: int) -> Token:
        start = self._pos
        while self._pos < self._n and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        text = self._src[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line)

    def _lex_number(self, line: int) -> Token:
        start = self._pos
        # Optional decimal size prefix.
        while self._pos < self._n and (self._peek().isdigit() or self._peek() == "_"):
            self._advance()
        if self._peek() == "'":
            self._advance()
            if self._peek() in "sS":
                self._advance()
            if self._peek() not in "bBdDhHoO":
                raise LexError("malformed based literal", line)
            self._advance()
            while self._pos < self._n and (
                self._peek().isalnum() or self._peek() in "_xXzZ?"
            ):
                self._advance()
        return Token(TokenKind.NUMBER, self._src[start : self._pos], line)

    def _lex_string(self, line: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._pos < self._n and self._peek() != '"':
            if self._peek() == "\n":
                raise LexError("unterminated string literal", line)
            self._advance()
        if self._pos >= self._n:
            raise LexError("unterminated string literal", line)
        text = self._src[start : self._pos]
        self._advance()  # closing quote
        return Token(TokenKind.STRING, text, line)


def parse_number_literal(text: str) -> "tuple[Optional[int], int]":
    """Decode a Verilog numeric literal into ``(width, value)``.

    ``width`` is ``None`` for unsized literals.  ``x``/``z`` digits are not
    representable in a plain int; they raise ``ValueError`` (the synthesizable
    subset we target treats them as don't-care only inside casez labels, which
    the parser handles separately).
    """
    text = text.replace("_", "")
    if "'" not in text:
        return None, int(text, 10)
    size_txt, rest = text.split("'", 1)
    width = int(size_txt) if size_txt else None
    if rest[0] in "sS":
        rest = rest[1:]
    base_ch = rest[0].lower()
    digits = rest[1:]
    base = {"b": 2, "d": 10, "h": 16, "o": 8}[base_ch]
    if any(c in "xXzZ?" for c in digits):
        raise ValueError(f"literal {text!r} contains x/z digits")
    value = int(digits, base) if digits else 0
    if width is not None:
        value &= (1 << width) - 1
    return width, value
