"""Verilog compiler-directive preprocessor.

Supports the directives real RTL uses before parsing:

- ```define NAME value`` / ```undef NAME`` — object-like macros,
  substituted at ```NAME`` references,
- ```ifdef`` / ```ifndef`` / ```else`` / ```elsif`` /
  ```endif`` — conditional compilation,
- ```include "file"`` — textual inclusion relative to the including
  file,
- ```timescale``, ```default_nettype`` and other no-op directives
  are dropped.

The output contains no backtick directives, so the lexer's line-skip
fallback never has to fire on preprocessed text.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Sequence

_MACRO_REF = re.compile(r"`([A-Za-z_][A-Za-z0-9_$]*)")
_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

# Directives silently dropped (simulation/lint concerns, not synthesis).
_NOOP_DIRECTIVES = frozenset({
    "timescale", "default_nettype", "resetall", "celldefine",
    "endcelldefine", "nounconnected_drive", "unconnected_drive",
})

_MAX_EXPANSION_DEPTH = 64
_MAX_INCLUDE_DEPTH = 32


class PreprocessError(Exception):
    def __init__(self, message: str, filename: str, line: int):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


class Preprocessor:
    """Single-pass line-oriented preprocessor with macro substitution."""

    def __init__(self, defines: Optional[Dict[str, str]] = None,
                 include_dirs: Sequence[str] = ()):
        self.macros: Dict[str, str] = dict(defines or {})
        self.include_dirs = list(include_dirs)

    # -- public -------------------------------------------------------------

    def process_text(self, text: str, filename: str = "<text>") -> str:
        from repro.obs import counter, span

        with span("parse.preprocess", file=filename) as sp:
            out: List[str] = []
            self._process_lines(text.splitlines(), filename, out, depth=0)
            sp.set("lines_in", text.count("\n") + 1)
            sp.set("lines_out", len(out))
        counter("verilog.preprocessed_lines").inc(len(out))
        return "\n".join(out) + "\n"

    def process_file(self, path: str) -> str:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.process_text(text, filename=path)

    # -- internals ------------------------------------------------------------

    def _process_lines(self, lines: Sequence[str], filename: str,
                       out: List[str], depth: int) -> None:
        if depth > _MAX_INCLUDE_DEPTH:
            raise PreprocessError("include depth exceeded", filename, 0)
        # Conditional stack entries: (taking, seen_true, in_else)
        stack: List[List[bool]] = []

        def active() -> bool:
            return all(frame[0] for frame in stack)

        for lineno, raw in enumerate(lines, start=1):
            stripped = raw.strip()
            if stripped.startswith("`"):
                handled = self._directive(
                    stripped, filename, lineno, out, stack, active, depth
                )
                if handled:
                    continue
            if not active():
                continue
            out.append(self._expand(raw, filename, lineno))

        if stack:
            raise PreprocessError("unterminated `ifdef", filename,
                                  len(lines))

    def _directive(self, line: str, filename: str, lineno: int,
                   out: List[str], stack: List[List[bool]], active,
                   depth: int) -> bool:
        body = line[1:]
        parts = body.split(None, 1)
        name = parts[0] if parts else ""
        rest = parts[1].strip() if len(parts) > 1 else ""

        if name == "ifdef" or name == "ifndef":
            if not _IDENT.match(rest.split()[0] if rest else ""):
                raise PreprocessError(f"bad `{name} operand", filename,
                                      lineno)
            symbol = rest.split()[0]
            defined = symbol in self.macros
            truth = defined if name == "ifdef" else not defined
            taking = active() and truth
            stack.append([taking, truth, False])
            return True
        if name == "elsif":
            if not stack:
                raise PreprocessError("`elsif without `ifdef", filename,
                                      lineno)
            frame = stack[-1]
            if frame[2]:
                raise PreprocessError("`elsif after `else", filename, lineno)
            symbol = rest.split()[0] if rest else ""
            truth = symbol in self.macros and not frame[1]
            frame[0] = truth and all(f[0] for f in stack[:-1])
            frame[1] = frame[1] or truth
            return True
        if name == "else":
            if not stack:
                raise PreprocessError("`else without `ifdef", filename,
                                      lineno)
            frame = stack[-1]
            if frame[2]:
                raise PreprocessError("duplicate `else", filename, lineno)
            frame[2] = True
            frame[0] = (not frame[1]) and all(f[0] for f in stack[:-1])
            frame[1] = True
            return True
        if name == "endif":
            if not stack:
                raise PreprocessError("`endif without `ifdef", filename,
                                      lineno)
            stack.pop()
            return True

        if not active():
            return True  # suppressed region: swallow remaining directives

        if name == "define":
            define_parts = rest.split(None, 1)
            if not define_parts or not _IDENT.match(define_parts[0]):
                raise PreprocessError("bad `define", filename, lineno)
            macro = define_parts[0]
            if "(" in macro:
                raise PreprocessError(
                    "function-like macros are not supported", filename,
                    lineno,
                )
            value = define_parts[1] if len(define_parts) > 1 else ""
            self.macros[macro] = value.strip()
            return True
        if name == "undef":
            symbol = rest.split()[0] if rest else ""
            self.macros.pop(symbol, None)
            return True
        if name == "include":
            match = re.match(r'^"([^"]+)"', rest)
            if not match:
                raise PreprocessError('`include expects "file"', filename,
                                      lineno)
            target = self._resolve_include(match.group(1), filename)
            with open(target, "r", encoding="utf-8") as handle:
                self._process_lines(handle.read().splitlines(), target, out,
                                    depth + 1)
            return True
        if name in _NOOP_DIRECTIVES:
            return True
        # Unknown directive that is not a macro reference: if it names a
        # defined macro, fall through to expansion; otherwise error.
        if name in self.macros:
            return False
        raise PreprocessError(f"unknown directive `{name}", filename,
                              lineno)

    def _resolve_include(self, name: str, from_file: str) -> str:
        candidates = []
        if from_file not in ("<text>",):
            candidates.append(os.path.join(os.path.dirname(from_file), name))
        candidates.extend(os.path.join(d, name) for d in self.include_dirs)
        candidates.append(name)
        for cand in candidates:
            if os.path.exists(cand):
                return cand
        raise PreprocessError(f"include file {name!r} not found", from_file,
                              0)

    def _expand(self, line: str, filename: str, lineno: int) -> str:
        for _ in range(_MAX_EXPANSION_DEPTH):
            match = _MACRO_REF.search(line)
            if match is None:
                return line
            name = match.group(1)
            if name not in self.macros:
                raise PreprocessError(f"undefined macro `{name}", filename,
                                      lineno)
            line = (line[: match.start()] + self.macros[name]
                    + line[match.end():])
        raise PreprocessError("macro expansion too deep (recursive "
                              "`define?)", filename, lineno)


def preprocess(text: str, defines: Optional[Dict[str, str]] = None,
               include_dirs: Sequence[str] = (),
               filename: str = "<text>") -> str:
    """One-shot convenience wrapper."""
    return Preprocessor(defines, include_dirs).process_text(text, filename)
