"""Recursive-descent parser for the synthesizable Verilog subset.

Handles both ANSI (``module m(input [3:0] a, output b);``) and non-ANSI
(``module m(a, b); input [3:0] a; ...``) port styles, continuous assigns,
always blocks with if/else, case/casez, for loops and begin/end blocks,
module instances (named and positional connections, parameter overrides) and
the built-in gate primitives — i.e. the RT and gate-level constructs the
paper's Rough Verilog Parser supports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.verilog import ast
from repro.verilog.lexer import Lexer, Token, TokenKind, parse_number_literal


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "^~": 4,
    "~^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"}

_GATE_TYPES = {"and", "or", "nand", "nor", "xor", "xnor", "not", "buf"}


class Parser:
    def __init__(self, source: str):
        self._tokens = Lexer(source).tokenize()
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _check(self, value: str) -> bool:
        tok = self._peek()
        return tok.kind in (TokenKind.OP, TokenKind.KEYWORD) and tok.value == value

    def _accept(self, value: str) -> bool:
        if self._check(value):
            self._advance()
            return True
        return False

    def _expect(self, value: str) -> Token:
        if not self._check(value):
            tok = self._peek()
            raise ParseError(f"expected {value!r}, found {tok.value!r}", tok.line)
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.value!r}", tok.line)
        return self._advance()

    # -- top level ---------------------------------------------------------

    def parse(self) -> ast.Source:
        source = ast.Source()
        while self._peek().kind is not TokenKind.EOF:
            source.modules.append(self._parse_module())
        return source

    def _parse_module(self) -> ast.Module:
        start = self._expect("module")
        name = self._expect_ident().value
        module = ast.Module(name=name, port_order=[], ports=[], line=start.line)

        if self._accept("#"):
            self._parse_module_params(module)

        ansi_ports: List[ast.PortDecl] = []
        if self._accept("("):
            if not self._check(")"):
                self._parse_port_list(module, ansi_ports)
            self._expect(")")
        self._expect(";")

        declared = {p.name: p for p in ansi_ports}
        module.ports = list(ansi_ports)

        while not self._check("endmodule"):
            self._parse_module_item(module, declared)
        self._expect("endmodule")

        # Non-ANSI style: port_order was collected from the header, port
        # declarations appeared as items.  Order ports by header order.
        if module.port_order and not ansi_ports:
            ordered = []
            for pname in module.port_order:
                if pname not in declared:
                    raise ParseError(
                        f"port {pname!r} of module {name!r} has no direction "
                        "declaration",
                        module.line,
                    )
                ordered.append(declared[pname])
            module.ports = ordered
        elif not module.port_order:
            module.port_order = [p.name for p in module.ports]
        return module

    def _parse_module_params(self, module: ast.Module) -> None:
        self._expect("(")
        self._expect("parameter")
        while True:
            name_tok = self._expect_ident()
            self._expect("=")
            value = self._parse_expr()
            module.params.append(ast.ParamDecl(name=name_tok.value,
                                               value=value,
                                               line=name_tok.line))
            if not self._accept(","):
                break
            self._accept("parameter")
        self._expect(")")

    def _parse_port_list(
        self, module: ast.Module, ansi_ports: List[ast.PortDecl]
    ) -> None:
        """Parse the header port list, ANSI or plain-name style."""
        direction: Optional[str] = None
        rng: Optional[ast.Range] = None
        while True:
            tok = self._peek()
            if tok.value in ("input", "output", "inout"):
                direction = self._advance().value
                is_reg = bool(self._accept("reg"))
                self._accept("wire")
                self._accept("signed")
                rng = self._parse_optional_range()
                name_tok = self._expect_ident()
                ansi_ports.append(
                    ast.PortDecl(
                        direction=direction,
                        name=name_tok.value,
                        range=rng,
                        is_reg=is_reg,
                        line=name_tok.line,
                    )
                )
                module.port_order.append(name_tok.value)
            elif tok.kind is TokenKind.IDENT:
                name_tok = self._advance()
                if ansi_ports and direction is not None:
                    # Continuation of the previous ANSI decl: input a, b
                    prev = ansi_ports[-1]
                    ansi_ports.append(
                        ast.PortDecl(
                            direction=prev.direction,
                            name=name_tok.value,
                            range=prev.range,
                            is_reg=prev.is_reg,
                            line=name_tok.line,
                        )
                    )
                module.port_order.append(name_tok.value)
            else:
                raise ParseError(
                    f"unexpected token {tok.value!r} in port list", tok.line
                )
            if not self._accept(","):
                return

    # -- module items ------------------------------------------------------

    def _parse_module_item(self, module: ast.Module, declared: dict) -> None:
        tok = self._peek()
        value = tok.value

        if value in ("input", "output", "inout"):
            self._parse_port_item(module, declared)
        elif value in ("wire", "reg", "integer"):
            self._parse_net_decl(module)
        elif value in ("parameter", "localparam"):
            self._parse_param_item(module)
        elif value == "assign":
            self._parse_cont_assign(module)
        elif value == "always":
            self._parse_always(module)
        elif value in _GATE_TYPES:
            self._parse_gate(module)
        elif tok.kind is TokenKind.IDENT:
            self._parse_instance(module)
        else:
            raise ParseError(f"unexpected token {value!r} in module body", tok.line)

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if not self._check("["):
            return None
        self._advance()
        msb = self._parse_expr()
        self._expect(":")
        lsb = self._parse_expr()
        self._expect("]")
        return ast.Range(msb=msb, lsb=lsb)

    def _parse_port_item(self, module: ast.Module, declared: dict) -> None:
        direction = self._advance().value
        is_reg = bool(self._accept("reg"))
        self._accept("wire")
        self._accept("signed")
        rng = self._parse_optional_range()
        while True:
            name_tok = self._expect_ident()
            port = ast.PortDecl(
                direction=direction,
                name=name_tok.value,
                range=rng,
                is_reg=is_reg,
                line=name_tok.line,
            )
            declared[name_tok.value] = port
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_net_decl(self, module: ast.Module) -> None:
        kind = self._advance().value
        self._accept("signed")
        rng = self._parse_optional_range() if kind != "integer" else None
        while True:
            name_tok = self._expect_ident()
            # Memory declarations (reg [7:0] mem [0:15]) are out of subset.
            if self._check("["):
                raise ParseError(
                    f"memory arrays are not supported ({name_tok.value!r})",
                    name_tok.line,
                )
            if self._accept("="):
                # wire w = expr;  -> declaration plus continuous assign
                rhs = self._parse_expr()
                module.nets.append(
                    ast.NetDecl(kind=kind, name=name_tok.value, range=rng,
                                line=name_tok.line)
                )
                module.assigns.append(
                    ast.ContAssign(
                        target=ast.Ident(name=name_tok.value, line=name_tok.line),
                        rhs=rhs,
                        line=name_tok.line,
                    )
                )
            else:
                module.nets.append(
                    ast.NetDecl(kind=kind, name=name_tok.value, range=rng,
                                line=name_tok.line)
                )
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_param_item(self, module: ast.Module) -> None:
        local = self._advance().value == "localparam"
        self._parse_optional_range()
        while True:
            name_tok = self._expect_ident()
            self._expect("=")
            value = self._parse_expr()
            module.params.append(ast.ParamDecl(name=name_tok.value,
                                               value=value, local=local,
                                               line=name_tok.line))
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_cont_assign(self, module: ast.Module) -> None:
        start = self._advance()  # 'assign'
        while True:
            target = self._parse_lhs()
            self._expect("=")
            rhs = self._parse_expr()
            module.assigns.append(
                ast.ContAssign(target=target, rhs=rhs, line=start.line)
            )
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_always(self, module: ast.Module) -> None:
        start = self._advance()  # 'always'
        self._expect("@")
        sensitivity: List[ast.SensItem] = []
        if self._accept("("):
            if self._accept("*"):
                pass  # empty sensitivity = combinational
            else:
                while True:
                    edge = "level"
                    if self._accept("posedge"):
                        edge = "posedge"
                    elif self._accept("negedge"):
                        edge = "negedge"
                    sig = self._expect_ident().value
                    sensitivity.append(ast.SensItem(edge=edge, signal=sig))
                    if not (self._accept("or") or self._accept(",")):
                        break
            self._expect(")")
        elif self._accept("*"):
            pass
        else:
            raise ParseError("expected sensitivity list", start.line)
        body = self._parse_stmt()
        module.always_blocks.append(
            ast.Always(sensitivity=sensitivity, body=body, line=start.line)
        )

    def _parse_gate(self, module: ast.Module) -> None:
        gate_tok = self._advance()
        inst_name: Optional[str] = None
        if self._peek().kind is TokenKind.IDENT:
            inst_name = self._advance().value
        self._expect("(")
        terminals = [self._parse_expr()]
        while self._accept(","):
            terminals.append(self._parse_expr())
        self._expect(")")
        self._expect(";")
        if len(terminals) < 2:
            raise ParseError("gate needs at least two terminals", gate_tok.line)
        module.gates.append(
            ast.GateInstance(
                gate_type=gate_tok.value,
                inst_name=inst_name,
                terminals=terminals,
                line=gate_tok.line,
            )
        )

    def _parse_instance(self, module: ast.Module) -> None:
        mod_tok = self._expect_ident()
        param_overrides: List[Tuple[Optional[str], ast.Expr]] = []
        if self._accept("#"):
            self._expect("(")
            param_overrides = self._parse_connection_list()
            self._expect(")")
        inst_tok = self._expect_ident()
        self._expect("(")
        conns_raw = self._parse_connection_list() if not self._check(")") else []
        self._expect(")")
        self._expect(";")
        connections = [
            ast.PortConn(name=n, expr=e, line=inst_tok.line) for n, e in conns_raw
        ]
        module.instances.append(
            ast.Instance(
                module_name=mod_tok.value,
                inst_name=inst_tok.value,
                connections=connections,
                param_overrides=param_overrides,
                line=inst_tok.line,
            )
        )

    def _parse_connection_list(self) -> List[Tuple[Optional[str], Optional[ast.Expr]]]:
        conns: List[Tuple[Optional[str], Optional[ast.Expr]]] = []
        while True:
            if self._accept("."):
                name = self._expect_ident().value
                self._expect("(")
                expr = None if self._check(")") else self._parse_expr()
                self._expect(")")
                conns.append((name, expr))
            else:
                conns.append((None, self._parse_expr()))
            if not self._accept(","):
                return conns

    # -- statements --------------------------------------------------------

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.value == "begin":
            return self._parse_block()
        if tok.value == "if":
            return self._parse_if()
        if tok.value in ("case", "casez", "casex"):
            return self._parse_case()
        if tok.value == "for":
            return self._parse_for()
        if tok.value == ";":
            self._advance()
            return ast.Block(stmts=[], line=tok.line)
        return self._parse_assign_stmt()

    def _parse_block(self) -> ast.Block:
        start = self._expect("begin")
        if self._accept(":"):
            self._expect_ident()  # named block; name ignored
        stmts: List[ast.Stmt] = []
        while not self._check("end"):
            stmts.append(self._parse_stmt())
        self._expect("end")
        return ast.Block(stmts=stmts, line=start.line)

    def _parse_if(self) -> ast.If:
        start = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then_stmt = self._parse_stmt()
        else_stmt = self._parse_stmt() if self._accept("else") else None
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt,
                      line=start.line)

    def _parse_case(self) -> ast.Case:
        start = self._advance()
        kind = start.value
        self._expect("(")
        selector = self._parse_expr()
        self._expect(")")
        items: List[ast.CaseItem] = []
        while not self._check("endcase"):
            item_line = self._peek().line
            if self._accept("default"):
                self._accept(":")
                stmt = self._parse_stmt()
                items.append(ast.CaseItem(labels=[], stmt=stmt, line=item_line))
            else:
                labels = [self._parse_case_label(kind)]
                while self._accept(","):
                    labels.append(self._parse_case_label(kind))
                self._expect(":")
                stmt = self._parse_stmt()
                items.append(ast.CaseItem(labels=labels, stmt=stmt, line=item_line))
        self._expect("endcase")
        return ast.Case(selector=selector, items=items, kind=kind, line=start.line)

    def _parse_case_label(self, case_kind: str) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER and any(c in "xXzZ?" for c in tok.value):
            self._advance()
            return _wildcard_label(tok, case_kind)
        return self._parse_expr()

    def _parse_for(self) -> ast.For:
        start = self._expect("for")
        self._expect("(")
        init = self._parse_simple_assign()
        self._expect(";")
        cond = self._parse_expr()
        self._expect(";")
        step = self._parse_simple_assign()
        self._expect(")")
        body = self._parse_stmt()
        return ast.For(init=init, cond=cond, step=step, body=body, line=start.line)

    def _parse_simple_assign(self) -> ast.AssignStmt:
        target = self._parse_lhs()
        self._expect("=")
        rhs = self._parse_expr()
        return ast.AssignStmt(target=target, rhs=rhs, blocking=True,
                              line=target.line)

    def _parse_assign_stmt(self) -> ast.AssignStmt:
        target = self._parse_lhs()
        blocking = True
        if self._accept("<="):
            blocking = False
        else:
            self._expect("=")
        rhs = self._parse_expr()
        self._expect(";")
        return ast.AssignStmt(target=target, rhs=rhs, blocking=blocking,
                              line=target.line)

    # -- expressions -------------------------------------------------------

    def _parse_lhs(self) -> ast.Expr:
        tok = self._peek()
        if tok.value == "{":
            return self._parse_concat()
        name_tok = self._expect_ident()
        return self._parse_select_suffix(name_tok)

    def _parse_select_suffix(self, name_tok: Token) -> ast.Expr:
        if not self._check("["):
            return ast.Ident(name=name_tok.value, line=name_tok.line)
        self._advance()
        first = self._parse_expr()
        if self._accept(":"):
            lsb = self._parse_expr()
            self._expect("]")
            return ast.PartSelect(name=name_tok.value, msb=first, lsb=lsb,
                                  line=name_tok.line)
        self._expect("]")
        return ast.BitSelect(name=name_tok.value, index=first, line=name_tok.line)

    def _parse_concat(self) -> ast.Expr:
        start = self._expect("{")
        first = self._parse_expr()
        if self._check("{"):
            # Replication: {N{expr}}
            self._advance()
            value = self._parse_expr()
            while self._accept(","):
                nxt = self._parse_expr()
                value = ast.Concat(parts=_concat_parts(value) + [nxt],
                                   line=start.line)
            self._expect("}")
            self._expect("}")
            return ast.Repeat(count=first, value=value, line=start.line)
        parts = [first]
        while self._accept(","):
            parts.append(self._parse_expr())
        self._expect("}")
        if len(parts) == 1:
            return parts[0]
        return ast.Concat(parts=parts, line=start.line)

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("?"):
            if_true = self._parse_ternary()
            self._expect(":")
            if_false = self._parse_ternary()
            return ast.Ternary(cond=cond, if_true=if_true, if_false=if_false,
                               line=cond.line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.OP:
                return left
            prec = _BINARY_PRECEDENCE.get(tok.value, 0)
            if prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(op=tok.value, left=left, right=right, line=tok.line)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.value in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=tok.value, operand=operand, line=tok.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            if any(c in "xXzZ?" for c in tok.value):
                return _wildcard_label(tok, "casez")
            width, value = parse_number_literal(tok.value)
            base = "d"
            if "'" in tok.value:
                base = tok.value.split("'", 1)[1].lstrip("sS")[0].lower()
            return ast.Number(value=value, width=width, base=base, line=tok.line)
        if tok.value == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if tok.value == "{":
            return self._parse_concat()
        if tok.kind is TokenKind.IDENT:
            name_tok = self._advance()
            return self._parse_select_suffix(name_tok)
        raise ParseError(f"unexpected token {tok.value!r} in expression", tok.line)


def _concat_parts(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.Concat):
        return list(expr.parts)
    return [expr]


def _wildcard_label(tok: Token, case_kind: str) -> ast.Expr:
    """Turn ``4'b1??0`` into a :class:`~repro.verilog.ast.CaseLabelWild`."""
    text = tok.value.replace("_", "")
    if "'" not in text:
        raise ParseError("wildcard literal must be based", tok.line)
    size_txt, rest = text.split("'", 1)
    if rest[0] in "sS":
        rest = rest[1:]
    base_ch = rest[0].lower()
    digits = rest[1:]
    if base_ch != "b":
        raise ParseError("wildcard case labels must use binary base", tok.line)
    width = int(size_txt) if size_txt else len(digits)
    bits = ""
    for ch in digits:
        if ch in "01":
            bits += ch
        elif ch in "zZ?":
            bits += "?"
        elif ch in "xX":
            if case_kind != "casex":
                raise ParseError("x digits only allowed in casex labels", tok.line)
            bits += "?"
        else:
            raise ParseError(f"bad binary digit {ch!r}", tok.line)
    bits = bits.rjust(width, "0")[-width:]
    return ast.CaseLabelWild(bits=bits, line=tok.line)


def parse_source(text: str) -> ast.Source:
    """Parse Verilog source text into a :class:`~repro.verilog.ast.Source`."""
    from repro.obs import counter, span

    with span("parse", chars=len(text)) as sp:
        parser = Parser(text)
        source = parser.parse()
        sp.set("tokens", len(parser._tokens))
        sp.set("modules", len(source.modules))
    counter("verilog.parses").inc()
    counter("verilog.modules_parsed").inc(len(source.modules))
    return source


def parse_file(path: str) -> ast.Source:
    """Parse a Verilog file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_source(handle.read())
