"""Verilog frontend: lexer, AST, parser and writer for the synthesizable
RT/gate-level subset that FACTOR operates on.

This package is the stand-in for the "Rough Verilog Parser" the paper builds
on: it turns Verilog source into an AST rich enough to compute def-use /
use-def chains, enclosing-construct information, and to be re-emitted as
synthesizable Verilog constraint netlists.
"""

from repro.verilog.lexer import Lexer, Token, TokenKind, LexError
from repro.verilog.parser import Parser, ParseError, parse_source, parse_file
from repro.verilog.preprocess import Preprocessor, PreprocessError, preprocess
from repro.verilog.writer import write_module, write_source
from repro.verilog import ast

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "LexError",
    "Parser",
    "ParseError",
    "parse_source",
    "parse_file",
    "Preprocessor",
    "PreprocessError",
    "preprocess",
    "write_module",
    "write_source",
    "ast",
]
