"""Emit synthesizable Verilog text from the AST.

FACTOR writes extracted constraints back out as Verilog netlists; this module
provides that serialization.  The output is parseable by our own parser
(round-trip tested) so extracted constraint files can be re-read, composed and
synthesized.
"""

from __future__ import annotations

from typing import List

from repro.verilog import ast

_INDENT = "  "

# Expression precedence for minimal parenthesisation (mirrors parser table).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "^~": 4,
    "~^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_PREC = 12
_TERNARY_PREC = 0


def write_expr(expr: ast.Expr, parent_prec: int = -1) -> str:
    """Render an expression, parenthesising only where needed."""
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Number):
        if expr.width is not None:
            if expr.base == "b":
                return f"{expr.width}'b{expr.value:0{expr.width}b}"
            if expr.base == "h":
                return f"{expr.width}'h{expr.value:x}"
            if expr.base == "o":
                return f"{expr.width}'o{expr.value:o}"
            return f"{expr.width}'d{expr.value}"
        return str(expr.value)
    if isinstance(expr, ast.CaseLabelWild):
        return f"{len(expr.bits)}'b{expr.bits}"
    if isinstance(expr, ast.BitSelect):
        return f"{expr.name}[{write_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return f"{expr.name}[{write_expr(expr.msb)}:{write_expr(expr.lsb)}]"
    if isinstance(expr, ast.Concat):
        inner = ", ".join(write_expr(p) for p in expr.parts)
        return "{" + inner + "}"
    if isinstance(expr, ast.Repeat):
        return "{" + write_expr(expr.count) + "{" + write_expr(expr.value) + "}}"
    if isinstance(expr, ast.Unary):
        inner = write_expr(expr.operand, _UNARY_PREC)
        if isinstance(expr.operand, ast.Unary):
            # Adjacent unary operators would re-lex as one multi-character
            # token (e.g. "^" + "~&x" -> "^~" "&x"): force parentheses.
            inner = f"({inner})"
        text = f"{expr.op}{inner}"
        return text if parent_prec <= _UNARY_PREC else f"({text})"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = write_expr(expr.left, prec)
        right = write_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return text if prec >= parent_prec else f"({text})"
    if isinstance(expr, ast.Ternary):
        text = (
            f"{write_expr(expr.cond, 1)} ? "
            f"{write_expr(expr.if_true, _TERNARY_PREC)} : "
            f"{write_expr(expr.if_false, _TERNARY_PREC)}"
        )
        return text if parent_prec <= _TERNARY_PREC else f"({text})"
    raise TypeError(f"cannot write expression {expr!r}")


def _write_range(rng) -> str:
    if rng is None:
        return ""
    return f"[{write_expr(rng.msb)}:{write_expr(rng.lsb)}] "


def _write_stmt(stmt: ast.Stmt, lines: List[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        if len(stmt.stmts) == 1:
            _write_stmt(stmt.stmts[0], lines, depth)
            return
        lines.append(f"{pad}begin")
        for inner in stmt.stmts:
            _write_stmt(inner, lines, depth + 1)
        lines.append(f"{pad}end")
    elif isinstance(stmt, ast.AssignStmt):
        op = "=" if stmt.blocking else "<="
        lines.append(f"{pad}{write_expr(stmt.target)} {op} {write_expr(stmt.rhs)};")
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}if ({write_expr(stmt.cond)})")
        # An unwrapped then-branch ending in an else-less `if` would capture
        # this statement's `else` on re-parse (dangling else); force begin/end.
        force = stmt.else_stmt is not None and _captures_else(stmt.then_stmt)
        _write_nested(stmt.then_stmt, lines, depth, force_block=force)
        if stmt.else_stmt is not None:
            lines.append(f"{pad}else")
            _write_nested(stmt.else_stmt, lines, depth)
    elif isinstance(stmt, ast.Case):
        lines.append(f"{pad}{stmt.kind} ({write_expr(stmt.selector)})")
        for item in stmt.items:
            if item.is_default:
                lines.append(f"{pad}{_INDENT}default:")
            else:
                labels = ", ".join(write_expr(lbl) for lbl in item.labels)
                lines.append(f"{pad}{_INDENT}{labels}:")
            _write_nested(item.stmt, lines, depth + 1)
        lines.append(f"{pad}endcase")
    elif isinstance(stmt, ast.For):
        init = f"{write_expr(stmt.init.target)} = {write_expr(stmt.init.rhs)}"
        step = f"{write_expr(stmt.step.target)} = {write_expr(stmt.step.rhs)}"
        lines.append(f"{pad}for ({init}; {write_expr(stmt.cond)}; {step})")
        _write_nested(stmt.body, lines, depth)
    else:
        raise TypeError(f"cannot write statement {stmt!r}")


def _captures_else(stmt: ast.Stmt) -> bool:
    """Would this statement, written bare, swallow a following ``else``?"""
    if isinstance(stmt, ast.If):
        if stmt.else_stmt is None:
            return True
        return _captures_else(stmt.else_stmt)
    if isinstance(stmt, ast.For):
        return _captures_else(stmt.body)
    if isinstance(stmt, ast.Block):
        # Only relevant when the block would be unwrapped (single statement).
        return len(stmt.stmts) == 1 and _captures_else(stmt.stmts[0])
    return False


def _write_nested(stmt: ast.Stmt, lines: List[str], depth: int,
                  force_block: bool = False) -> None:
    """Write the body of an if/else/case arm, wrapping blocks properly."""
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block) and (force_block or len(stmt.stmts) != 1):
        lines.append(f"{pad}begin")
        for inner in stmt.stmts:
            _write_stmt(inner, lines, depth + 1)
        lines.append(f"{pad}end")
    elif force_block:
        lines.append(f"{pad}begin")
        _write_stmt(stmt, lines, depth + 1)
        lines.append(f"{pad}end")
    else:
        _write_stmt(stmt, lines, depth + 1)


def write_module(module: ast.Module) -> str:
    """Render a complete module declaration."""
    lines: List[str] = []
    header_ports = ", ".join(module.port_order)
    lines.append(f"module {module.name}({header_ports});")

    for param in module.params:
        kw = "localparam" if param.local else "parameter"
        lines.append(f"{_INDENT}{kw} {param.name} = {write_expr(param.value)};")

    for port in module.ports:
        reg_txt = "reg " if port.is_reg else ""
        lines.append(
            f"{_INDENT}{port.direction} {reg_txt}{_write_range(port.range)}"
            f"{port.name};"
        )

    for net in module.nets:
        lines.append(f"{_INDENT}{net.kind} {_write_range(net.range)}{net.name};")

    for gate in module.gates:
        name_txt = f" {gate.inst_name}" if gate.inst_name else ""
        terms = ", ".join(write_expr(t) for t in gate.terminals)
        lines.append(f"{_INDENT}{gate.gate_type}{name_txt}({terms});")

    for assign in module.assigns:
        lines.append(
            f"{_INDENT}assign {write_expr(assign.target)} = "
            f"{write_expr(assign.rhs)};"
        )

    for inst in module.instances:
        param_txt = ""
        if inst.param_overrides:
            parts = []
            for name, expr in inst.param_overrides:
                if name is None:
                    parts.append(write_expr(expr))
                else:
                    parts.append(f".{name}({write_expr(expr)})")
            param_txt = " #(" + ", ".join(parts) + ")"
        conns = []
        for conn in inst.connections:
            expr_txt = "" if conn.expr is None else write_expr(conn.expr)
            if conn.name is None:
                conns.append(expr_txt)
            else:
                conns.append(f".{conn.name}({expr_txt})")
        lines.append(
            f"{_INDENT}{inst.module_name}{param_txt} {inst.inst_name}"
            f"({', '.join(conns)});"
        )

    for always in module.always_blocks:
        if not always.sensitivity:
            sens = "*"
        else:
            sens = " or ".join(
                (f"{item.edge} {item.signal}" if item.edge != "level" else item.signal)
                for item in always.sensitivity
            )
        lines.append(f"{_INDENT}always @({sens})")
        _write_nested(always.body, lines, 1)

    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_source(source: ast.Source) -> str:
    """Render every module in a source collection."""
    return "\n".join(write_module(mod) for mod in source.modules)
