"""AST node classes for the synthesizable Verilog subset.

The node set mirrors the internal data structure of the paper's Fig. 2: a
module owns parameters, I/O declarations, nets, continuous assigns, gate/
module instances and always blocks; statements nest through if/else, case,
for and begin/end blocks; leaves are assignments or primitives.

Every node carries ``line`` for diagnostics.  Expressions implement
``signals()`` (the identifiers read by the expression) which is the raw
material for the def-use / use-def chains built in :mod:`repro.hierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions."""

    line: int = 0

    def signals(self) -> Set[str]:
        """Names of all identifiers read by this expression."""
        raise NotImplementedError


@dataclass
class Ident(Expr):
    name: str
    line: int = 0

    def signals(self) -> Set[str]:
        return {self.name}


@dataclass
class Number(Expr):
    value: int
    width: Optional[int] = None  # None = unsized
    base: str = "d"
    line: int = 0

    def signals(self) -> Set[str]:
        return set()


@dataclass
class BitSelect(Expr):
    name: str
    index: Expr
    line: int = 0

    def signals(self) -> Set[str]:
        return {self.name} | self.index.signals()


@dataclass
class PartSelect(Expr):
    name: str
    msb: Expr
    lsb: Expr
    line: int = 0

    def signals(self) -> Set[str]:
        return {self.name} | self.msb.signals() | self.lsb.signals()


@dataclass
class Concat(Expr):
    parts: List[Expr]
    line: int = 0

    def signals(self) -> Set[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.signals()
        return out


@dataclass
class Repeat(Expr):
    count: Expr
    value: Expr
    line: int = 0

    def signals(self) -> Set[str]:
        return self.count.signals() | self.value.signals()


@dataclass
class Unary(Expr):
    op: str  # one of ~ ! - + & | ^ ~& ~| ~^
    operand: Expr
    line: int = 0

    def signals(self) -> Set[str]:
        return self.operand.signals()


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0

    def signals(self) -> Set[str]:
        return self.left.signals() | self.right.signals()


@dataclass
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr
    line: int = 0

    def signals(self) -> Set[str]:
        return self.cond.signals() | self.if_true.signals() | self.if_false.signals()


@dataclass
class CaseLabelWild(Expr):
    """A casez label with ``?``/``z`` wildcard bits, e.g. ``4'b1??0``.

    ``bits`` is MSB-first, each element '0', '1' or '?'.
    """

    bits: str
    line: int = 0

    def signals(self) -> Set[str]:
        return set()

    @property
    def width(self) -> int:
        return len(self.bits)


# ---------------------------------------------------------------------------
# LHS targets
# ---------------------------------------------------------------------------

# An assignment LHS is an Ident, BitSelect, PartSelect or Concat of those.


def lhs_base_names(expr: Expr) -> Set[str]:
    """Names of the signals *written* by an assignment target."""
    if isinstance(expr, Ident):
        return {expr.name}
    if isinstance(expr, (BitSelect, PartSelect)):
        return {expr.name}
    if isinstance(expr, Concat):
        out: Set[str] = set()
        for part in expr.parts:
            out |= lhs_base_names(part)
        return out
    raise TypeError(f"invalid assignment target: {expr!r}")


def lhs_index_signals(expr: Expr) -> Set[str]:
    """Signals *read* by an assignment target (bit/part-select indices)."""
    if isinstance(expr, Ident):
        return set()
    if isinstance(expr, BitSelect):
        return expr.index.signals()
    if isinstance(expr, PartSelect):
        return expr.msb.signals() | expr.lsb.signals()
    if isinstance(expr, Concat):
        out: Set[str] = set()
        for part in expr.parts:
            out |= lhs_index_signals(part)
        return out
    raise TypeError(f"invalid assignment target: {expr!r}")


# ---------------------------------------------------------------------------
# Statements (inside always blocks)
# ---------------------------------------------------------------------------


class Stmt:
    line: int = 0

    def defined(self) -> Set[str]:
        """Signals assigned anywhere within this statement."""
        raise NotImplementedError

    def used(self) -> Set[str]:
        """Signals read anywhere within this statement."""
        raise NotImplementedError


@dataclass
class AssignStmt(Stmt):
    """Blocking (``=``) or non-blocking (``<=``) procedural assignment."""

    target: Expr
    rhs: Expr
    blocking: bool = True
    line: int = 0

    def defined(self) -> Set[str]:
        return lhs_base_names(self.target)

    def used(self) -> Set[str]:
        return self.rhs.signals() | lhs_index_signals(self.target)


@dataclass
class Block(Stmt):
    stmts: List[Stmt]
    line: int = 0

    def defined(self) -> Set[str]:
        out: Set[str] = set()
        for stmt in self.stmts:
            out |= stmt.defined()
        return out

    def used(self) -> Set[str]:
        out: Set[str] = set()
        for stmt in self.stmts:
            out |= stmt.used()
        return out


@dataclass
class If(Stmt):
    cond: Expr
    then_stmt: Stmt
    else_stmt: Optional[Stmt] = None
    line: int = 0

    def defined(self) -> Set[str]:
        out = self.then_stmt.defined()
        if self.else_stmt is not None:
            out = out | self.else_stmt.defined()
        return out

    def used(self) -> Set[str]:
        out = self.cond.signals() | self.then_stmt.used()
        if self.else_stmt is not None:
            out = out | self.else_stmt.used()
        return out


@dataclass
class CaseItem:
    labels: List[Expr]  # empty = default
    stmt: Stmt
    line: int = 0

    @property
    def is_default(self) -> bool:
        return not self.labels


@dataclass
class Case(Stmt):
    selector: Expr
    items: List[CaseItem]
    kind: str = "case"  # case | casez | casex
    line: int = 0

    def defined(self) -> Set[str]:
        out: Set[str] = set()
        for item in self.items:
            out |= item.stmt.defined()
        return out

    def used(self) -> Set[str]:
        out = self.selector.signals()
        for item in self.items:
            for label in item.labels:
                out |= label.signals()
            out |= item.stmt.used()
        return out


@dataclass
class For(Stmt):
    init: AssignStmt
    cond: Expr
    step: AssignStmt
    body: Stmt
    line: int = 0

    def defined(self) -> Set[str]:
        return self.init.defined() | self.step.defined() | self.body.defined()

    def used(self) -> Set[str]:
        return (
            self.init.used()
            | self.cond.signals()
            | self.step.used()
            | self.body.used()
        )


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass
class Range:
    """A ``[msb:lsb]`` vector range; expressions so parameters are allowed."""

    msb: Expr
    lsb: Expr

    def signals(self) -> Set[str]:
        return self.msb.signals() | self.lsb.signals()


@dataclass
class PortDecl:
    direction: str  # input | output | inout
    name: str
    range: Optional[Range] = None
    is_reg: bool = False
    line: int = 0


@dataclass
class NetDecl:
    kind: str  # wire | reg | integer
    name: str
    range: Optional[Range] = None
    line: int = 0


@dataclass
class ParamDecl:
    name: str
    value: Expr
    local: bool = False
    line: int = 0


@dataclass
class ContAssign:
    """Continuous ``assign lhs = rhs;``."""

    target: Expr
    rhs: Expr
    line: int = 0

    def defined(self) -> Set[str]:
        return lhs_base_names(self.target)

    def used(self) -> Set[str]:
        return self.rhs.signals() | lhs_index_signals(self.target)


@dataclass
class SensItem:
    """One event in a sensitivity list."""

    edge: str  # posedge | negedge | level
    signal: str


@dataclass
class Always:
    sensitivity: List[SensItem]  # empty list means always @(*)
    body: Stmt
    line: int = 0

    @property
    def is_sequential(self) -> bool:
        return any(item.edge in ("posedge", "negedge") for item in self.sensitivity)

    def defined(self) -> Set[str]:
        return self.body.defined()

    def used(self) -> Set[str]:
        out = self.body.used()
        if not self.is_sequential:
            return out
        return out | {item.signal for item in self.sensitivity}


@dataclass
class PortConn:
    name: Optional[str]  # None for positional connection
    expr: Optional[Expr]  # None for unconnected port ()
    line: int = 0


@dataclass
class Instance:
    module_name: str
    inst_name: str
    connections: List[PortConn]
    param_overrides: List[Tuple[Optional[str], Expr]] = field(default_factory=list)
    line: int = 0


@dataclass
class GateInstance:
    """Built-in primitive: and/or/nand/nor/xor/xnor/not/buf.

    ``terminals[0]`` is the output (for not/buf, possibly several outputs
    followed by one input — we keep the standard one-output form).
    """

    gate_type: str
    inst_name: Optional[str]
    terminals: List[Expr]
    line: int = 0

    def defined(self) -> Set[str]:
        return lhs_base_names(self.terminals[0])

    def used(self) -> Set[str]:
        out: Set[str] = set()
        for term in self.terminals[1:]:
            out |= term.signals()
        return out


@dataclass
class Module:
    name: str
    port_order: List[str]
    ports: List[PortDecl]
    params: List[ParamDecl] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    assigns: List[ContAssign] = field(default_factory=list)
    always_blocks: List[Always] = field(default_factory=list)
    instances: List[Instance] = field(default_factory=list)
    gates: List[GateInstance] = field(default_factory=list)
    line: int = 0

    def port(self, name: str) -> PortDecl:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"module {self.name} has no port {name!r}")

    def port_names(self) -> List[str]:
        return [p.name for p in self.ports]

    def inputs(self) -> List[PortDecl]:
        return [p for p in self.ports if p.direction == "input"]

    def outputs(self) -> List[PortDecl]:
        return [p for p in self.ports if p.direction == "output"]


@dataclass
class Source:
    """A parsed collection of modules (one or more files)."""

    modules: List[Module] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"no module named {name!r}")

    def module_names(self) -> List[str]:
        return [m.name for m in self.modules]

    def extend(self, other: "Source") -> None:
        existing = set(self.module_names())
        for mod in other.modules:
            if mod.name in existing:
                raise ValueError(f"duplicate module {mod.name!r}")
            self.modules.append(mod)


def walk_exprs(root: Expr) -> Iterable[Expr]:
    """Yield every sub-expression of ``root`` including itself (pre-order)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (BitSelect,)):
            stack.append(node.index)
        elif isinstance(node, PartSelect):
            stack.extend((node.msb, node.lsb))
        elif isinstance(node, Concat):
            stack.extend(node.parts)
        elif isinstance(node, Repeat):
            stack.extend((node.count, node.value))
        elif isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, Ternary):
            stack.extend((node.cond, node.if_true, node.if_false))


def walk_stmts(root: Stmt) -> Iterable[Stmt]:
    """Yield every statement under ``root`` including itself (pre-order)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Block):
            stack.extend(node.stmts)
        elif isinstance(node, If):
            stack.append(node.then_stmt)
            if node.else_stmt is not None:
                stack.append(node.else_stmt)
        elif isinstance(node, Case):
            stack.extend(item.stmt for item in node.items)
        elif isinstance(node, For):
            stack.append(node.body)
