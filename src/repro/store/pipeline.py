"""Store-backed pipeline stages: parsing and whole-design synthesis.

These wrappers are the warm-start entry points for the two stages whose
inputs are easy to fingerprint at the call boundary: Verilog text (the
``ast`` stage) and a whole design (the ``synth`` stage).  The per-MUT
stages (extraction, transform, ATPG) key on upstream fingerprints and live
with their owners in :mod:`repro.core.composer` / :mod:`repro.core.factor`.

Both wrappers are drop-in replacements for the uncached functions: a
disabled or unwritable store degrades to calling straight through.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import counter, span
from repro.store.core import MISS, get_store
from repro.store.fingerprint import fingerprint_text


def parse_verilog_cached(text: str):
    """Parse Verilog text, memoized on the text fingerprint.

    The returned :class:`~repro.verilog.ast.Source` is stamped with
    ``fingerprint`` (the text hash) either way, which
    :class:`repro.hierarchy.design.Design` picks up so downstream stage
    keys don't have to re-serialize the AST.
    """
    from repro.verilog.parser import parse_source

    text_fp = fingerprint_text(text)
    store = get_store()
    key = {"text": text_fp}
    source = store.get("ast", key)
    if source is MISS:
        source = parse_source(text)
        store.put("ast", key, source)
    else:
        with span("parse.store", chars=len(text)):
            counter("verilog.parse_store_hits").inc()
    source.fingerprint = text_fp
    return source


def synthesize_cached(design, root: Optional[str] = None,
                      name: Optional[str] = None,
                      do_optimize: bool = True):
    """Whole-design synthesis memoized on the design fingerprint."""
    from repro.synth.elaborate import synthesize

    store = get_store()
    key = {
        "design": design.fingerprint,
        "root": root,
        "name": name,
        "do_optimize": do_optimize,
    }
    netlist = store.get("synth", key)
    if netlist is MISS:
        netlist = synthesize(design, root=root, name=name,
                             do_optimize=do_optimize)
        store.put("synth", key, netlist)
    else:
        with span("synth.store", design=design.top, root=root or ""):
            counter("synth.store_hits").inc()
    return netlist
