"""Content fingerprints for artifact-store keys.

Every store key is a SHA-256 over a *canonical JSON* rendering of the
inputs that determine a stage's output: source text, tool version, option
values, and upstream artifact fingerprints.  Canonicalization maps the
value types the pipeline actually uses (enums, tuples, sets, frozensets,
dataclass-like objects already rendered to dicts) onto deterministic JSON
so the same inputs always hash to the same key, in every process and on
every platform.

This module is deliberately dependency-light (hashlib + json only) so the
hierarchy and synthesis layers can import it without cycles.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any, Iterable


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-able form with a deterministic rendering."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, bytes):
        return value.hex()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for "
                    f"fingerprinting: {value!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text for ``value`` (sorted keys, no whitespace)."""
    return json.dumps(_canonical(value), sort_keys=True,
                      separators=(",", ":"))


def fingerprint_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def fingerprint_text(text: str) -> str:
    return fingerprint_bytes(text.encode("utf-8"))


def fingerprint_obj(value: Any) -> str:
    """Fingerprint of any canonicalizable value."""
    return fingerprint_text(canonical_json(value))


def gates_fingerprint(gates: Iterable, num_nets: int) -> str:
    """Fingerprint of a gate sequence (order-sensitive).

    Used for the codegen stage, whose generated program depends only on the
    levelized gate order and the net-id space.
    """
    h = hashlib.sha256()
    h.update(str(num_nets).encode("ascii"))
    for gate in gates:
        h.update(gate.type.value.encode("ascii"))
        h.update(b"%d:" % gate.output)
        for inp in gate.inputs:
            h.update(b"%d," % inp)
        h.update(b";")
    return h.hexdigest()


def netlist_fingerprint(netlist) -> str:
    """Content fingerprint of a gate-level netlist.

    Covers everything downstream consumers can observe: the net-id space
    and names (fault sites are reported by name), gates, PI/PO lists and
    the hierarchical region map used for fault-region filtering.  Cached on
    the netlist instance; mutation after fingerprinting is the caller's
    responsibility (the pipeline only fingerprints finished netlists).
    """
    cached = getattr(netlist, "_content_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(gates_fingerprint(netlist.gates,
                               len(netlist._names)).encode("ascii"))
    h.update(canonical_json({
        "names": [n or "" for n in netlist._names],
        "pis": list(netlist.pis),
        "po_pairs": [[net, name] for net, name in netlist.po_pairs],
        "regions": dict(getattr(netlist, "regions", {})),
    }).encode("utf-8"))
    fp = h.hexdigest()
    try:
        netlist._content_fingerprint = fp
    except AttributeError:  # pragma: no cover - exotic netlist stand-ins
        pass
    return fp


def atpg_options_fingerprint(options, backend: str) -> str:
    """Fingerprint of an :class:`repro.atpg.engine.AtpgOptions`.

    ``backend`` is the *resolved* backend (the ``None`` default defers to
    the environment, which must not silently alias two different
    configurations to one key).
    """
    import dataclasses

    fields = dataclasses.asdict(options)
    fields["fault_sim_backend"] = backend
    # Worker count changes how fast the run goes, never what it produces
    # (the parallel engine commits results in serial order; detected/
    # untestable sets are bit-identical at any jobs value), so it must
    # not split the cache key space: a report generated with --jobs 4
    # warm-starts a serial run and vice versa.
    fields.pop("jobs", None)
    return fingerprint_obj(fields)
