"""Persistent content-addressed artifact store: the warm-start substrate.

The FACTOR pipeline's economy is reuse — constraints extracted once are
reused across MUTs (paper Section 2.2) — but in-process reuse dies with the
process.  This package makes it durable: every expensive stage output is
keyed by a fingerprint of its inputs and published to a content-addressed
on-disk store, so a second CLI run, benchmark row or ``--jobs`` worker
warm-starts instead of re-parsing, re-extracting, re-elaborating,
re-code-generating and re-running ATPG from scratch.

Stages and their keys:

===========  ==============================================================
``ast``      preprocessed Verilog text fingerprint
``extract``  (design fp, MUT module+path, extraction mode)
``transform``(design fp, MUT module+path, mode, optimize flag)
``synth``    (design fp, root, netlist name, optimize flag)
``codegen``  (levelized gate-order fp, chunk size, CPython magic)
``atpg``     (netlist content fp, resolved ATPG options fp)
``campaign`` (trial job-spec request fingerprint)
===========  ==============================================================

See :mod:`repro.store.core` for robustness guarantees (atomic publish,
corruption/version-skew fallback, concurrency) and the environment knobs
(``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE``).
"""

from repro.store.core import (
    MISS,
    STORE_SCHEMA,
    ArtifactStore,
    default_cache_dir,
    get_store,
    store_disabled,
)
from repro.store.fingerprint import (
    atpg_options_fingerprint,
    canonical_json,
    fingerprint_obj,
    fingerprint_text,
    gates_fingerprint,
    netlist_fingerprint,
)
from repro.store.pipeline import parse_verilog_cached, synthesize_cached

__all__ = [
    "MISS",
    "STORE_SCHEMA",
    "ArtifactStore",
    "default_cache_dir",
    "get_store",
    "store_disabled",
    "atpg_options_fingerprint",
    "canonical_json",
    "fingerprint_obj",
    "fingerprint_text",
    "gates_fingerprint",
    "netlist_fingerprint",
    "parse_verilog_cached",
    "synthesize_cached",
]
