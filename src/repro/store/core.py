"""The persistent, content-addressed artifact store.

Layout on disk (one file per artifact, content-addressed by key
fingerprint)::

    <root>/v1/<stage>/<kk>/<key-fingerprint>.pkl

where ``<kk>`` is the first two hex digits of the key fingerprint and
``<stage>`` is a short stage name (``ast``, ``extract``, ``transform``,
``synth``, ``codegen``, ``arena``, ``atpg``, ``campaign``).  Every
payload is wrapped in an envelope
recording the store schema and the producing tool version; entries whose
envelope does not match the reader are treated as misses and recomputed —
the store may *never* fail a pipeline run.

Publishing is atomic: payloads are written to a temp file in the target
directory and moved into place with :func:`os.replace`, so concurrent
``--jobs`` workers and parallel CI shards can share one cache directory
without readers ever observing a partial entry.

Environment knobs:

- ``REPRO_CACHE_DIR`` — cache root (default ``$XDG_CACHE_HOME/repro`` or
  ``~/.cache/repro``),
- ``REPRO_NO_CACHE`` — any value other than empty/``0`` disables the store
  entirely (no reads, no writes).

Per-stage traffic is counted through :mod:`repro.obs.metrics` under the
``store.`` prefix (``store.<stage>.hits`` / ``.misses`` / ``.writes``,
``store.<stage>.bytes_read`` / ``.bytes_written``, plus
``store.corrupt_entries`` for envelope/deserialization failures), which
``repro profile`` surfaces alongside the pipeline metrics.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import counter, get_logger
from repro.store.fingerprint import fingerprint_text, canonical_json

_log = get_logger("store")

#: Bump when the on-disk entry format (envelope or layout) changes.
STORE_SCHEMA = 1

#: Sentinel returned by :meth:`ArtifactStore.get` on a miss, so ``None``
#: payloads remain storable.
MISS = object()

_PICKLE_PROTOCOL = 4


def _repro_version() -> str:
    # Imported lazily: repro/__init__ -> core.factor -> hierarchy ->
    # repro.store would otherwise see a partially initialized package.
    from repro import __version__

    return __version__


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``/``~/.cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def store_disabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")


class ArtifactStore:
    """Content-addressed pickle store with atomic publish."""

    def __init__(self, root: str, enabled: bool = True):
        self.root = root
        self.enabled = enabled
        self._broken = False  # set when the root is unwritable

    # -- keys and paths ----------------------------------------------------

    def key_fingerprint(self, stage: str, key: Dict[str, Any]) -> str:
        """The content address of an entry.

        The tool version, store schema and python major.minor are folded
        into every key, so upgrades miss cleanly instead of deserializing
        foreign payloads (the envelope check is the backstop).
        """
        full = {
            "stage": stage,
            "schema": STORE_SCHEMA,
            "repro": _repro_version(),
            "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
            "key": key,
        }
        return fingerprint_text(canonical_json(full))

    def entry_path(self, stage: str, key: Dict[str, Any]) -> str:
        fp = self.key_fingerprint(stage, key)
        return os.path.join(self.root, f"v{STORE_SCHEMA}", stage,
                            fp[:2], fp + ".pkl")

    # -- read/write --------------------------------------------------------

    def get(self, stage: str, key: Dict[str, Any]) -> Any:
        """The stored payload, or :data:`MISS`.

        Corrupted, truncated, version-skewed or otherwise unreadable
        entries count as misses (and are unlinked best-effort); a store
        read can never raise into the pipeline.
        """
        if not self.enabled:
            return MISS
        path = self.entry_path(stage, key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            counter(f"store.{stage}.misses").inc()
            return MISS
        try:
            envelope = pickle.loads(data)
            if (envelope["schema"] != STORE_SCHEMA
                    or envelope["repro"] != _repro_version()
                    or envelope["stage"] != stage):
                raise ValueError("envelope mismatch")
            payload = envelope["payload"]
        except Exception as exc:
            # Truncated write, schema drift, unpicklable class change...
            # all degrade to a recompute, never a crash.
            _log.warning("store_corrupt_entry", stage=stage, path=path,
                         error=str(exc))
            counter("store.corrupt_entries").inc()
            counter(f"store.{stage}.misses").inc()
            self._unlink_quiet(path)
            return MISS
        counter(f"store.{stage}.hits").inc()
        counter(f"store.{stage}.bytes_read").inc(len(data))
        return payload

    def put(self, stage: str, key: Dict[str, Any], payload: Any) -> bool:
        """Atomically publish ``payload``; returns False when skipped.

        Write failures (read-only cache dir, disk full, unpicklable
        payload) disable further writes for this store instance and are
        reported once at warning level — the run itself proceeds.
        """
        if not self.enabled or self._broken:
            return False
        path = self.entry_path(stage, key)
        try:
            data = pickle.dumps({
                "schema": STORE_SCHEMA,
                "repro": _repro_version(),
                "stage": stage,
                "payload": payload,
            }, protocol=_PICKLE_PROTOCOL)
        except Exception as exc:
            _log.warning("store_unpicklable_payload", stage=stage,
                         error=str(exc))
            return False
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_path, path)
            except BaseException:
                self._unlink_quiet(tmp_path)
                raise
        except OSError as exc:
            self._broken = True
            _log.warning("store_unwritable", root=self.root, error=str(exc))
            return False
        counter(f"store.{stage}.writes").inc()
        counter(f"store.{stage}.bytes_written").inc(len(data))
        return True

    def memo(self, stage: str, key: Dict[str, Any],
             compute: Callable[[], Any]) -> Any:
        """``get`` or ``compute``-then-``put`` in one step."""
        payload = self.get(stage, key)
        if payload is MISS:
            payload = compute()
            self.put(stage, key, payload)
        return payload

    # -- maintenance -------------------------------------------------------

    def _entries(self):
        """Yield ``(stage, path, size_bytes, mtime)`` for every entry."""
        schema_root = os.path.join(self.root, f"v{STORE_SCHEMA}")
        if not os.path.isdir(schema_root):
            return
        for stage in sorted(os.listdir(schema_root)):
            stage_dir = os.path.join(schema_root, stage)
            if not os.path.isdir(stage_dir):
                continue
            for dirpath, _dirnames, filenames in os.walk(stage_dir):
                for filename in sorted(filenames):
                    if not filename.endswith(".pkl"):
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        st = os.stat(path)
                    except OSError:
                        continue
                    yield stage, path, st.st_size, st.st_mtime

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage entry counts and byte totals (plus a ``total`` row)."""
        out: Dict[str, Dict[str, int]] = {}
        total = {"entries": 0, "bytes": 0}
        for stage, _path, size, _mtime in self._entries():
            bucket = out.setdefault(stage, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            total["entries"] += 1
            total["bytes"] += size
        out["total"] = total
        return out

    def clear(self) -> int:
        """Remove every entry; returns the number of files removed."""
        removed = 0
        for _stage, path, _size, _mtime in list(self._entries()):
            if self._unlink_quiet(path):
                removed += 1
        return removed

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-modified entries until the store fits in
        ``max_bytes``; returns ``(files_removed, bytes_remaining)``."""
        entries = sorted(self._entries(), key=lambda e: e[3])  # oldest first
        total = sum(size for _stage, _path, size, _mtime in entries)
        removed = 0
        for _stage, path, size, _mtime in entries:
            if total <= max_bytes:
                break
            if self._unlink_quiet(path):
                total -= size
                removed += 1
        return removed, total

    @staticmethod
    def _unlink_quiet(path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False


_NULL_STORE = ArtifactStore(root="", enabled=False)
_STORES: Dict[str, ArtifactStore] = {}


def get_store() -> ArtifactStore:
    """The store for the current environment configuration.

    Resolved per call so tests (and long-lived processes) can flip
    ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` between pipeline runs;
    instances are reused per root so write-failure latching sticks.
    """
    if store_disabled():
        return _NULL_STORE
    root = default_cache_dir()
    store = _STORES.get(root)
    if store is None:
        store = ArtifactStore(root=root, enabled=True)
        _STORES[root] = store
    return store
