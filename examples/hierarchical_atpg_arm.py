#!/usr/bin/env python
"""The paper's headline experiment on one module: hierarchical test
generation for the register file embedded four levels deep in the ARM-2
substitute processor.

Three ATPG configurations are compared, exactly the paper's Tables 4-6 flow:

1. RAW       — the whole processor given to the ATPG engine, faults
               targeted inside ``regfile_struct`` (sampled: this is the
               intractable configuration),
2. CONVENTIONAL — transformed module built without constraint composition,
3. FACTOR    — transformed module built with hierarchical composition and
               PIERs enabled.

Run:  python examples/hierarchical_atpg_arm.py
"""

from repro import ExtractionMode, Factor
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.core.report import format_table
from repro.designs import arm2_source
from repro.synth import synthesize

MUT = "regfile_struct"
PATH = "u_core.u_dp.u_rb.u_rf."


def atpg_options(**overrides):
    base = dict(
        max_frames=4,
        frame_schedule=(2, 4),
        backtrack_limit=300,
        fault_time_limit=1.0,
        total_time_limit=120.0,
        random_sequences=8,
        random_sequence_length=24,
        seed=2002,
    )
    base.update(overrides)
    return AtpgOptions(**base)


def main():
    rows = []

    print("Synthesizing the full processor...")
    factor_compose = Factor.from_verilog(arm2_source(), top="arm")
    full = synthesize(factor_compose.design)
    print(f"  {full}")

    print(f"\n[1/3] RAW: processor-level ATPG targeting {MUT} "
          "(200-fault sample)...")
    raw = AtpgEngine(
        full, atpg_options(fault_region=PATH, fault_sample=200)
    ).run()
    rows.append({
        "configuration": "raw processor-level",
        "cov_%": round(raw.coverage_percent, 2),
        "eff_%": round(raw.efficiency_percent, 2),
        "tgen_s": round(raw.test_gen_seconds, 2),
        "faults": raw.total_faults,
        "env_gates": full.gate_count(),
    })

    print("[2/3] CONVENTIONAL: transformed module without composition...")
    factor_conv = Factor.from_verilog(arm2_source(), top="arm",
                                      mode=ExtractionMode.CONVENTIONAL)
    res_conv = factor_conv.analyze(MUT, path=PATH)
    rep_conv = factor_conv.generate_tests(res_conv, atpg_options())
    rows.append({
        "configuration": "transformed (no composition)",
        "cov_%": round(rep_conv.coverage_percent, 2),
        "eff_%": round(rep_conv.efficiency_percent, 2),
        "tgen_s": round(rep_conv.test_gen_seconds, 2),
        "faults": rep_conv.total_faults,
        "env_gates": res_conv.transformed.total_gates,
    })

    print("[3/3] FACTOR: transformed module with composition + PIERs...")
    res_comp = factor_compose.analyze(MUT, path=PATH)
    rep_comp = factor_compose.generate_tests(res_comp, atpg_options())
    rows.append({
        "configuration": "transformed (composition)",
        "cov_%": round(rep_comp.coverage_percent, 2),
        "eff_%": round(rep_comp.efficiency_percent, 2),
        "tgen_s": round(rep_comp.test_gen_seconds, 2),
        "faults": rep_comp.total_faults,
        "env_gates": res_comp.transformed.total_gates,
    })

    print()
    print(format_table(
        f"Hierarchical test generation for {MUT} "
        f"(embedded at {PATH})", rows,
    ))
    print(f"PIERs identified: {len(res_comp.pier_nets)} register bits "
          "(the register file is load/store-accessible)")
    print("\nExpected shape (paper Tables 4-6): raw coverage lowest and "
          "slowest per fault;\ncomposition >= no-composition on coverage "
          "with a smaller environment.")


if __name__ == "__main__":
    main()
