#!/usr/bin/env python
"""Constraint-file workflow: FACTOR-ise a design you bring as Verilog files.

Shows the tool-style flow the paper describes in Section 3:

1. read Verilog files and build the internal data structure,
2. pick the MUT and extract its constraints at every hierarchy level,
3. write the constraints out as synthesizable Verilog netlists, one file per
   module, "retaining the original directory structure",
4. read the emitted constraints back and verify they re-synthesize to the
   same transformed netlist.

Run:  python examples/constraint_files.py [output_dir]
"""

import os
import sys
import tempfile

from repro import Factor
from repro.designs import arm2_source, ARM2_MUTS
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def main():
    out_root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="factor_constraints_"
    )

    # Step 1: in a real flow these would be .v files on disk; we materialise
    # the benchmark design to show the file-based API.
    src_dir = os.path.join(out_root, "rtl")
    os.makedirs(src_dir, exist_ok=True)
    rtl_path = os.path.join(src_dir, "arm2.v")
    with open(rtl_path, "w", encoding="utf-8") as handle:
        handle.write(arm2_source())

    factor = Factor.from_files([rtl_path], top="arm")
    print(f"Read {rtl_path}: modules "
          f"{', '.join(factor.design.module_names())}\n")

    # Steps 2-3: extract and emit constraints for every MUT.
    for mut in ARM2_MUTS:
        result = factor.analyze(mut.name, path=mut.path)
        mut_dir = os.path.join(out_root, "constraints", mut.name)
        written = result.write_constraints(mut_dir)
        total = sum(os.path.getsize(p) for p in written)
        print(f"{mut.name:16s} -> {len(written):2d} constraint files, "
              f"{total:6d} bytes, S' = "
              f"{result.transformed.surrounding_gates} gates")

        # Step 4: re-read the emitted files and check the round trip.
        text = "\n".join(open(p, encoding="utf-8").read() for p in written)
        re_design = Design(parse_source(text), top="arm")
        re_netlist = synthesize(re_design)
        assert re_netlist.gate_count() == result.transformed.total_gates, (
            "re-synthesized constraint netlist differs!"
        )

    print(f"\nAll constraint netlists verified; files under {out_root}")


if __name__ == "__main__":
    main()
