#!/usr/bin/env python
"""Quickstart: extract functional constraints for an embedded module and
generate tests for it.

A small hierarchical design is defined inline: a `filter_core` module buried
inside a `chip`, surrounded by decode logic (which constrains its control
input to hard-coded patterns) and an unrelated diagnostics block (which
FACTOR's extraction discards).

Run:  python examples/quickstart.py
"""

from repro import ExtractionMode, Factor
from repro.atpg.engine import AtpgOptions

CHIP = """
module filter_core(
  input [7:0] sample,
  input [1:0] mode,
  output reg [7:0] filtered
);
  always @(*)
    case (mode)
      2'b00: filtered = sample;
      2'b01: filtered = sample >> 1;
      2'b10: filtered = (sample >> 1) + (sample >> 2);
      default: filtered = 8'd0;
    endcase
endmodule

module diagnostics(
  input clk,
  input rst,
  input [7:0] bus,
  output [15:0] checksum
);
  reg [15:0] acc;
  always @(posedge clk)
    if (rst) acc <= 16'd0;
    else acc <= acc + {8'd0, bus};
  assign checksum = acc;
endmodule

module chip(
  input clk,
  input rst,
  input [7:0] adc_in,
  input [2:0] cfg,
  input [7:0] dbg_bus,
  output [7:0] dac_out,
  output [15:0] dbg_checksum
);
  reg [1:0] mode;
  always @(*)
    case (cfg)
      3'd0: mode = 2'b00;
      3'd1: mode = 2'b01;
      3'd2: mode = 2'b10;
      default: mode = 2'b00;
    endcase

  wire [7:0] filtered;
  filter_core u_filter(.sample(adc_in), .mode(mode), .filtered(filtered));
  assign dac_out = filtered;

  diagnostics u_diag(.clk(clk), .rst(rst), .bus(dbg_bus),
                     .checksum(dbg_checksum));
endmodule
"""


def main():
    factor = Factor.from_verilog(CHIP, top="chip",
                                 mode=ExtractionMode.COMPOSE)

    print("=== FACTOR quickstart ===\n")
    result = factor.analyze("filter_core", path="u_filter.")

    tr = result.transformed
    print(f"Transformed module: {tr.total_gates} gates "
          f"({tr.mut_gates} in the MUT, {tr.surrounding_gates} in S')")
    print(f"Interface: {tr.num_pis} PIs, {tr.num_pos} POs")
    print(f"Modules kept: {', '.join(result.extraction.kept_modules())}")
    print("  (note: 'diagnostics' is not in the filter's functional cone)\n")

    print("--- Testability analysis (Section 4.2 style) ---")
    print(result.testability.summary())
    print()

    print("--- Extracted constraint netlist (S' as Verilog) ---")
    print(result.transformed.verilog)

    print("--- Test generation on the transformed module ---")
    report = factor.generate_tests(
        result,
        AtpgOptions(max_frames=2, random_sequences=4,
                    random_sequence_length=16),
    )
    print(f"fault coverage : {report.coverage_percent:.2f} %")
    print(f"ATPG efficiency: {report.efficiency_percent:.2f} %")
    print(f"test vectors   : {report.num_vectors}")
    print(f"CPU time       : {report.total_seconds:.2f} s")


if __name__ == "__main__":
    main()
