#!/usr/bin/env python
"""Translate transformed-module tests back to the chip level.

The paper's methodology ends with pattern translation: tests generated for
the MUT inside M+S' are converted into processor-level stimulus —
register-file pre-loads become MOVI/SHL/OR instruction prologues, and ST
instructions store results back out for observation.

This example generates tests for the register file on its transformed
module, translates them, and fault-simulates the translated program on the
FULL processor to measure how much of the transformed-module coverage
survives translation.

Run:  python examples/chip_level_translation.py
"""

from repro import Factor
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.vectors import TestSet
from repro.designs import arm2_source
from repro.designs.arm2_translation import translate_test, translate_test_set
from repro.synth import synthesize

MUT = "regfile_struct"
PATH = "u_core.u_dp.u_rb.u_rf."


def main():
    factor = Factor.from_verilog(arm2_source(), top="arm")
    print("Extracting constraints and building the transformed module...")
    result = factor.analyze(MUT, path=PATH)

    print("Generating tests on the transformed module...")
    opts = AtpgOptions(
        max_frames=4, frame_schedule=(2, 4), backtrack_limit=200,
        fault_time_limit=0.4, random_sequences=8,
        random_sequence_length=24,
        fault_region=result.transformed.mut_region,
        pier_qs=frozenset(result.pier_nets), seed=2002,
    )
    engine = AtpgEngine(result.transformed.netlist, opts)
    report = engine.run()
    testset = TestSet.from_engine(engine, result.transformed.netlist)
    print(f"  transformed-module coverage: {report.coverage_percent:.2f} % "
          f"({report.num_tests} tests, {report.num_vectors} vectors)")

    pier_tests = sum(1 for t in testset.tests if t.initial_state)
    print(f"  {pier_tests} tests use PIER register pre-loads\n")

    sample = next((t for t in testset.tests if t.initial_state), None)
    if sample is not None:
        translated = translate_test(sample)
        print("Example prologue for one PIER-loading test:")
        for reg, value in sorted(translated.loaded_registers.items()):
            print(f"  r{reg} <- 0x{value:04x}")
        print(f"  ({len(translated.prologue)} instructions, "
              f"{len(translated.epilogue)} store instructions)\n")

    print("Translating the whole test set to chip level...")
    full = synthesize(factor.design)
    chip_pins = [full.net_name(pi) for pi in full.pis]
    chip_tests = translate_test_set(testset, chip_pins)
    print(f"  {chip_tests.num_vectors} chip-level vectors "
          f"(from {testset.num_vectors} module-level vectors)")

    print("Fault-simulating the translated program on the full processor...")
    chip_cov = chip_tests.measure_coverage(full, region=PATH)
    print(f"  chip-level coverage of the MUT's faults: {chip_cov:.2f} %")
    print(f"  (transformed-module reference: "
          f"{report.coverage_percent:.2f} %)")
    print(
        "\nTranslation keeps most of the coverage; the remainder relies on\n"
        "pipeline-state pre-loads (wb registers) that the simple\n"
        "MOVI-based translator does not reconstruct — the paper's tool\n"
        "had the same pattern-translation caveat."
    )


if __name__ == "__main__":
    main()
