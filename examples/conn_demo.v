// Connectivity demo: one small design exercising every root-cause reason
// the "repro explain" query and the W101/W102/W103 traces can report.
//
//   python -m repro lint examples/conn_demo.v --top conn_demo
//   python -m repro explain examples/conn_demo.v --top conn_demo ghost
//   python -m repro explain examples/conn_demo.v --top conn_demo stuck
//   python -m repro explain examples/conn_demo.v --top conn_demo masked
//   python -m repro explain examples/conn_demo.v --top conn_demo half
//
// Unlike lint_demo.v, this design elaborates into a loop-free netlist, so
// blocked findings at the chip interface carry simulator-verified witness
// vector pairs.  The comments name the reason code each construct yields.

module conn_demo(
  input clk,
  input sel_probe,           // W102 / unused: never read -> vector pair
  input [1:0] data_in,
  output orphan_out,         // W101 / no_definition: never driven
  output sum_out,
  output state_out,
  output mux_out,
  output [3:0] half_out
);
  // truncated_slice: only bits [1:0] of half are ever driven; [3:2]
  // cannot be justified to any value.
  wire [3:0] half;
  assign half[1:0] = data_in;
  assign half_out = half;

  // dead_branch: every definition of ghost sits under a constant-false
  // condition, so it can never be justified.
  reg ghost;
  always @(*) begin
    if (1'b0)
      ghost = data_in[0];
  end

  // unreachable_dff_state: the register's load guard is constant false;
  // the state it would need to reach state_out never occurs.
  reg stuck;
  always @(posedge clk) begin
    if (1'b0)
      stuck <= data_in[1];
  end
  assign state_out = stuck;

  // masked_mux: masked is only read in the dead arm of a mux whose
  // select is pinned at constant 1 — its value is masked off.
  wire masked;
  assign masked = data_in[0] ^ data_in[1];
  assign mux_out = 1'b1 ? data_in[0] : masked;

  // constant_cone (W103): the child's 'en' input is wired to a cone that
  // terminates only in a hard-coded constant.
  wire tied;
  assign tied = 1'b1;
  conn_leaf u_leaf (
    .clk(clk),
    .d(data_in[0]),
    .en(tied),
    .q(sum_out)
  );

  // W102 in a child module (buried endpoint: no vector pair from here).
  conn_sink u_sink (
    .dead_end(data_in[1])
  );
endmodule

module conn_leaf(
  input clk,
  input d,
  input en,
  output q
);
  reg r;
  always @(posedge clk) begin
    if (en)
      r <= d;
  end
  assign q = r;
endmodule

// dead_end arrives from the parent but is never read: W102 / unused.
module conn_sink(
  input dead_end
);
endmodule
