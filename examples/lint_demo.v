// Deliberately buggy design exercising the repro.lint rule set.
//
// Run it through all three output formats:
//
//   python -m repro lint examples/lint_demo.v --top lint_demo
//   python -m repro lint examples/lint_demo.v --top lint_demo --format json
//   python -m repro lint examples/lint_demo.v --top lint_demo --format sarif
//
// Every finding below is intentional; the comments name the rule each
// construct is meant to trigger.

module lint_demo(
  input clk,
  input rst_n,
  input [3:0] a,
  input [3:0] b,
  input spare_in,            // W102: input port never used
  output [3:0] y,
  output [3:0] z,
  output dangling_out        // W101: output port never driven
);
  wire [3:0] ghost;          // W003: declared but never referenced
  wire [3:0] knot;
  wire looped;
  reg  [3:0] mixed;

  // W002: phantom is used but never driven anywhere.
  wire [3:0] phantom;
  assign y = a & phantom;

  // W007: 4-bit lhs assigned an 8-bit concatenation (truncates).
  assign z = {a, b};

  // W009: constant condition makes one branch dead.
  assign looped_en = 1'b0 ? a[0] : b[0];
  wire looped_en;

  // W201: combinational loop through the gate network.
  and g_loop (looped, looped, looped_en);

  // W202: second input of this gate is a floating net.
  and g_float (open_drain, a[1], never_driven);
  wire open_drain;
  wire never_driven;

  // W006: blocking and non-blocking assignments mixed in one block.
  always @(posedge clk) begin
    mixed = a;
    mixed <= b;
  end

  // W103: knot's whole source cone is constant, so the child's tied
  // input can never be toggled from the chip interface.
  assign knot = 4'b0101;

  // W008: 4-bit port fed with an 8-bit concatenation.
  lint_child u_child (
    .narrow({a, b}),
    .tied(knot),
    .out()
  );
endmodule

module lint_child(
  input [3:0] narrow,
  input [3:0] tied,
  output [3:0] out
);
  assign out = narrow ^ tied;
endmodule

// Never instantiated: holds constructs the synthesizer front-end rejects
// outright (multiple drivers, inferred latches) so that lint_demo above
// still elaborates and the netlist-level rules can run on it.
module lint_orphan(
  input [3:0] p,
  input [3:0] q,
  output [3:0] tangle
);
  reg [3:0] latchy;

  // W001: tangle has two full continuous drivers.
  assign tangle = p;
  assign tangle = q;

  // W004 + W005: incomplete case in a combinational block, no default,
  // and latchy is only assigned on some paths (latch inference).
  always @(*) begin
    case (p[1:0])
      2'b00: latchy = 4'd1;
      2'b01: latchy = 4'd2;
    endcase
  end
endmodule
