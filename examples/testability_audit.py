#!/usr/bin/env python
"""Pre-ATPG testability audit of every module under test (Section 4.2).

FACTOR's extraction produces testability knowledge as a by-product — without
building or analyzing any state machine:

- inputs whose justification cones terminate only in hard-coded constants
  (coverage on those inputs' logic is structurally limited in-system),
- signals with empty use-def / def-use chains (no path from/to the chip
  interface),
- plus SCOAP controllability/observability hotspots of each transformed
  module as a quantitative cross-check.

Run:  python examples/testability_audit.py
"""

from repro import Factor
from repro.atpg.scoap import scoap_measures
from repro.core.report import format_table
from repro.designs import ARM2_MUTS, arm2_source


def main():
    factor = Factor.from_verilog(arm2_source(), top="arm")

    rows = []
    for mut in ARM2_MUTS:
        result = factor.analyze(mut.name, path=mut.path)
        report = result.testability
        rows.append({
            "module": mut.name,
            "inputs": report.total_input_ports,
            "hard_coded": report.num_hard_coded,
            "empty_chains": sum(
                1 for w in report.warnings
                if w.kind in ("no_driver", "no_propagation")
            ),
        })

        print("=" * 70)
        print(report.summary())

        scoap = scoap_measures(result.transformed.netlist)
        print("\n  SCOAP hardest-to-control nets in the transformed module:")
        for name, cost in scoap.hardest_to_control(
            result.transformed.netlist, count=5
        ):
            print(f"    {name:45s} cost {cost}")
        print("  SCOAP hardest-to-observe nets:")
        for name, cost in scoap.hardest_to_observe(
            result.transformed.netlist, count=5
        ):
            print(f"    {name:45s} cost {cost}")
        print()

    print(format_table("Testability audit summary", rows))
    print(
        "Reading the table: arm_alu's 13 hard-coded control inputs are the\n"
        "paper's Section 4.2 finding — its in-system coverage cannot match\n"
        "the stand-alone module, and FACTOR reports it before ATPG runs."
    )


if __name__ == "__main__":
    main()
