#!/usr/bin/env python
"""Test-engineering companion flow: compaction, BIST screening, diagnosis.

After FACTOR produces a transformed-module test set, a test engineer
typically:

1. **compacts** the vectors (tester time is money),
2. checks what a pseudorandom **logic-BIST** session would catch, and which
   faults are random-pattern resistant (the deterministic set must carry
   them),
3. keeps the test set's **diagnostic resolution** in mind for silicon
   debug: given a failing device's pass/fail syndrome, how precisely do the
   tests implicate a fault site?

This example runs all three on the exception unit of the ARM-2 substitute.

Run:  python examples/test_engineering.py
"""

from repro import Factor
from repro.atpg.bist import BistRun
from repro.atpg.compaction import compact
from repro.atpg.diagnosis import Diagnoser
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.faults import build_fault_list
from repro.atpg.vectors import TestSet
from repro.designs import arm2_source

MUT = "exc"
PATH = "u_core.u_exc."


def main():
    factor = Factor.from_verilog(arm2_source(), top="arm")
    result = factor.analyze(MUT, path=PATH)
    netlist = result.transformed.netlist
    region = result.transformed.mut_region

    print(f"Generating tests for {MUT} on its transformed module...")
    opts = AtpgOptions(
        max_frames=4, frame_schedule=(2, 4), backtrack_limit=200,
        fault_time_limit=0.4, random_sequences=8, random_sequence_length=24,
        fault_region=region, pier_qs=frozenset(result.pier_nets), seed=2002,
    )
    engine = AtpgEngine(netlist, opts)
    report = engine.run()
    testset = TestSet.from_engine(engine, netlist)
    print(f"  {report.coverage_percent:.2f} % coverage, "
          f"{len(testset.tests)} tests / {testset.num_vectors} vectors\n")

    print("--- 1. Static compaction ---")
    # Replay must use the same observation model the engine used: PIER
    # D-inputs are store-observable.
    observe = sorted(
        dff.inputs[0] for dff in netlist.dffs()
        if dff.output in result.pier_nets
    )
    compacted = compact(testset, netlist, region=region,
                        extra_observables=observe)
    print(f"  {compacted.original_tests} -> {compacted.kept_tests} tests "
          f"({compacted.test_reduction_percent:.0f} % fewer), "
          f"{compacted.original_vectors} -> {compacted.kept_vectors} "
          f"vectors, coverage preserved at "
          f"{compacted.coverage_percent:.2f} %\n")

    print("--- 2. Logic BIST screening ---")
    bist = BistRun(netlist, seed=0x5EED, reset_input="rst")
    bist_report = bist.run(patterns=512, region=region)
    print(f"  512 LFSR patterns: {bist_report.coverage_percent:.2f} % of "
          f"the MUT's faults, fault-free MISR signature "
          f"0x{bist_report.signature:x}")
    print(f"  {len(bist_report.resistant)} random-pattern-resistant faults "
          "remain for the deterministic set, e.g.:")
    for name in bist_report.resistant_names(netlist, count=5):
        print(f"    {name}")
    print()

    print("--- 3. Diagnostic resolution ---")
    diag = Diagnoser(netlist, compacted.testset, region=region)
    faults = build_fault_list(netlist, region=region)
    perfect = 0
    sampled = 0
    for fault in faults[::7]:
        syndrome = diag.observe(fault)
        if not any(syndrome):
            continue
        sampled += 1
        if diag.resolution(fault) == 1:
            perfect += 1
    print(f"  of {sampled} sampled detected faults, {perfect} are uniquely "
          "identified by their pass/fail syndrome;")
    fault = next(f for f in faults if any(diag.observe(f)))
    best = diag.diagnose(diag.observe(fault))[0]
    print(f"  example: observing the syndrome of [{fault.describe(netlist)}]"
          f" ranks [{best.fault.describe(netlist)}] first "
          f"(perfect match: {best.perfect})")


if __name__ == "__main__":
    main()
