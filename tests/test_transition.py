"""Transition-fault model tests."""


from repro.atpg.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    build_transition_fault_list,
    transition_coverage,
)
from repro.designs import counter_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import GateType, Netlist
from repro.verilog.parser import parse_source


def buffer_netlist():
    nl = Netlist("buf")
    a = nl.add_pi("a")
    y = nl.add_gate(GateType.BUF, (a,))
    nl.add_po(y, "y")
    return nl, a, y


class TestModel:
    def test_fault_list_two_per_site(self):
        nl, a, y = buffer_netlist()
        faults = build_transition_fault_list(nl)
        assert len(faults) == 4  # (a, y) x (rise, fall)

    def test_describe(self):
        nl, a, y = buffer_netlist()
        assert TransitionFault(a, True).describe(nl) == "a slow-to-rise"
        assert TransitionFault(a, False).describe(nl) == "a slow-to-fall"

    def test_region_filter(self):
        src = """
        module leaf(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire t;
          leaf u1(.i(a), .o(t));
          assign y = t;
        endmodule
        """
        nl = synthesize(Design(parse_source(src)), do_optimize=False)
        region = build_transition_fault_list(nl, region="u1.")
        assert region
        assert len(region) < len(build_transition_fault_list(nl))


class TestDetection:
    def test_rising_transition_needs_launch_pair(self):
        nl, a, y = buffer_netlist()
        sim = TransitionFaultSimulator(nl, lanes=4)
        str_fault = TransitionFault(y, True)

        # A single vector cannot detect a transition fault.
        assert sim.detected_faults([{a: 1}], [str_fault]) == set()
        # 0 then 1: the slow rise holds y at 0 while the good machine
        # shows 1 -> detected on the second vector.
        assert sim.detected_faults([{a: 0}, {a: 1}], [str_fault]) == {
            str_fault
        }
        # 1 then 0: wrong direction for slow-to-rise.
        assert sim.detected_faults([{a: 1}, {a: 0}], [str_fault]) == set()

    def test_falling_transition(self):
        nl, a, y = buffer_netlist()
        sim = TransitionFaultSimulator(nl, lanes=4)
        stf = TransitionFault(y, False)
        assert sim.detected_faults([{a: 1}, {a: 0}], [stf]) == {stf}
        assert sim.detected_faults([{a: 0}, {a: 1}], [stf]) == set()

    def test_gross_delay_sticks_until_driven_back(self):
        # After a missed rising edge the faulty net keeps its old value;
        # a later cycle that drives it low realigns both machines.
        nl, a, y = buffer_netlist()
        sim = TransitionFaultSimulator(nl, lanes=4)
        str_fault = TransitionFault(y, True)
        vectors = [{a: 0}, {a: 0}, {a: 1}]  # rise launched on last cycle
        assert sim.detected_faults(vectors, [str_fault]) == {str_fault}

    def test_x_initial_value_cannot_launch(self):
        # With no established previous value the first vector cannot launch
        # a transition even if it sets the on-value.
        nl, a, y = buffer_netlist()
        sim = TransitionFaultSimulator(nl, lanes=4)
        str_fault = TransitionFault(y, True)
        assert sim.detected_faults([{a: 1}, {a: 1}], [str_fault]) == set()

    def test_through_logic(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        g = nl.add_gate(GateType.AND, (a, b))
        nl.add_po(g, "y")
        sim = TransitionFaultSimulator(nl, lanes=4)
        fault = TransitionFault(g, True)
        # Launch 0->1 on the AND output with b enabling propagation.
        vectors = [{a: 0, b: 1}, {a: 1, b: 1}]
        assert sim.detected_faults(vectors, [fault]) == {fault}


class TestCoverage:
    def test_counter_transition_coverage(self):
        nl = synthesize(Design(parse_source(counter_source())))
        # A long count sequence launches transitions on every counter bit.
        vectors = [{pi: 0 for pi in nl.pis} for _ in range(20)]
        for pi in nl.pis:
            name = nl.net_name(pi)
            if name == "rst":
                vectors[0][pi] = 1
            if name == "en":
                for vec in vectors[1:]:
                    vec[pi] = 1
        cov, undetected = transition_coverage(nl, [vectors])
        assert cov > 40.0
        assert all(isinstance(f, TransitionFault) for f in undetected)

    def test_transition_coverage_below_stuck_at(self):
        from repro.atpg.engine import AtpgEngine, AtpgOptions
        from repro.atpg.vectors import TestSet

        nl = synthesize(Design(parse_source(counter_source())))
        engine = AtpgEngine(nl, AtpgOptions(max_frames=6))
        report = engine.run()
        ts = TestSet.from_engine(engine, nl)
        pi_by_name = {nl.net_name(pi): pi for pi in nl.pis}
        sequences = [
            [{pi_by_name[n]: b for n, b in vec.items()} for vec in t.vectors]
            for t in ts.tests
        ]
        cov, _ = transition_coverage(nl, sequences)
        # Transition faults need launch pairs on top of stuck-at conditions.
        assert 0.0 < cov <= report.coverage_percent + 1e-9
