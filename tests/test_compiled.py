"""Differential tests for the compiled simulation backend.

The compiled backend (code-generated good-machine evaluation plus
cone-partitioned fault simulation) must be observationally identical to the
interpreted reference on every netlist: same three-valued net values, same
detected fault sets, same ATPG results.  These tests drive both backends
over seeded random netlists and the bundled library designs and require
exact equality.
"""

import random

import pytest

from repro.atpg.compiled import (
    BACKENDS,
    NetValues,
    default_backend,
    get_compiled,
    resolve_backend,
)
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import build_fault_list
from repro.atpg.simulator import LogicSimulator
from repro.designs import counter_source, small_designs
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.verilog.parser import parse_source

_COMB = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND,
         GateType.NOR, GateType.XNOR, GateType.NOT, GateType.BUF]


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


def random_netlist(seed, num_pis=5, num_dffs=3, num_gates=25):
    """Seeded random sequential netlist with n-ary gates and Q-net POs."""
    rng = random.Random(seed)
    nl = Netlist(f"rand{seed}")
    nets = [CONST0, CONST1]
    nets += [nl.add_pi(f"i{k}") for k in range(num_pis)]
    qs = [nl.new_net(f"q{k}") for k in range(num_dffs)]
    nets += qs  # Q nets are usable before their DFF is declared.
    for k in range(num_gates):
        gtype = rng.choice(_COMB)
        if gtype in (GateType.NOT, GateType.BUF):
            ins = [rng.choice(nets)]
        else:
            ins = [rng.choice(nets)
                   for _ in range(rng.choice((2, 2, 2, 3, 4)))]
        nets.append(nl.add_gate(gtype, ins, name=f"g{k}"))
    for k, q in enumerate(qs):
        nl.add_gate_to(GateType.DFF, q, [rng.choice(nets)])
    # Observe a mix of gate outputs and DFF outputs (the Q-net PO case
    # regressed in an early compiled prototype).
    for k in range(4):
        nl.add_po(rng.choice(nets[2:]), f"o{k}")
    nl.add_po(rng.choice(qs), "oq")
    nl.validate()
    return nl


def random_mask_vectors(nl, cycles, width, seed):
    """Random (ones, zeros) PI masks, including X and partially-X lanes."""
    rng = random.Random(seed)
    full = (1 << width) - 1
    out = []
    for _ in range(cycles):
        vec = {}
        for pi in nl.pis:
            ones = rng.randint(0, full)
            zeros = rng.randint(0, full) & ~ones
            vec[pi] = (ones, zeros)
        out.append(vec)
    return out


def random_bit_vectors(nl, cycles, seed, x_rate=0.2):
    """Random scalar vectors; some PIs are left unassigned (X)."""
    rng = random.Random(seed)
    out = []
    for _ in range(cycles):
        out.append({pi: rng.randint(0, 1) for pi in nl.pis
                    if rng.random() >= x_rate})
    return out


# -- logic simulator ---------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_logic_sim_differential(seed):
    nl = random_netlist(seed)
    width = 6
    ref = LogicSimulator(nl, width=width, backend="interpreted")
    cmp_ = LogicSimulator(nl, width=width, backend="compiled")
    for vec in random_mask_vectors(nl, 8, width, seed + 100):
        v_ref = ref.step(vec)
        v_cmp = cmp_.step(vec)
        for net in range(nl.num_nets):
            assert v_cmp.get(net, (0, 0)) == v_ref.get(net, (0, 0)), \
                f"net {net} ({nl.net_name(net)})"
        assert dict(cmp_.state) == dict(ref.state)


def test_logic_sim_constants_and_undriven():
    nl = Netlist("consts")
    a = nl.add_pi("a")
    floating = nl.new_net("floating")
    g = nl.add_gate(GateType.AND, [a, CONST1, floating])
    nl.add_po(g, "o")
    sim = LogicSimulator(nl, backend="compiled")
    values = sim.step({a: (1, 0)})
    assert values[CONST0] == (0, 1)
    assert values[CONST1] == (1, 0)
    assert values[floating] == (0, 0)  # undriven reads X
    assert values[g] == (0, 0)  # AND with an X input and no 0 input


# -- fault simulator ---------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("lanes", [4, 512])
def test_fault_sim_differential(seed, lanes):
    nl = random_netlist(seed)
    faults = build_fault_list(nl)
    vectors = random_bit_vectors(nl, 10, seed + 500)
    ref = FaultSimulator(nl, lanes=lanes, backend="interpreted")
    cmp_ = FaultSimulator(nl, lanes=lanes, backend="compiled")
    assert cmp_.detected_faults(vectors, faults) == \
        ref.detected_faults(vectors, faults)


def test_fault_sim_initial_state_and_extra_observables():
    nl = netlist_of(counter_source())
    faults = build_fault_list(nl)
    vectors = random_bit_vectors(nl, 6, 42, x_rate=0.0)
    init = {dff.output: (i % 2) for i, dff in enumerate(nl.dffs())}
    extra = [nl.dffs()[0].inputs[0]]
    ref = FaultSimulator(nl, backend="interpreted")
    cmp_ = FaultSimulator(nl, backend="compiled")
    assert cmp_.detected_faults(vectors, faults, initial_state=init,
                                extra_observables=extra) == \
        ref.detected_faults(vectors, faults, initial_state=init,
                            extra_observables=extra)


@pytest.mark.parametrize("name", sorted(small_designs()))
def test_cone_partition_matches_full_block(name):
    """Cone-partitioned narrow blocks detect exactly what one full-netlist
    block (and the interpreted reference) detects on the bundled designs."""
    nl = netlist_of(small_designs()[name])
    faults = build_fault_list(nl)
    vectors = random_bit_vectors(nl, 8, 7, x_rate=0.1)
    one_block = FaultSimulator(nl, lanes=len(faults) + 1,
                               backend="compiled")
    narrow = FaultSimulator(nl, lanes=5, backend="compiled")
    ref = FaultSimulator(nl, backend="interpreted")
    expected = ref.detected_faults(vectors, faults)
    assert one_block.detected_faults(vectors, faults) == expected
    assert narrow.detected_faults(vectors, faults) == expected


def test_engine_backend_equivalence():
    nl = netlist_of(small_designs()["fsm"])
    reports = {}
    for backend in BACKENDS:
        engine = AtpgEngine(nl, AtpgOptions(
            max_frames=2, frame_schedule=(1, 2), backtrack_limit=50,
            random_sequences=2, random_sequence_length=8, seed=11,
            fault_sim_backend=backend))
        reports[backend] = engine.run()
    a, b = reports["interpreted"], reports["compiled"]
    assert a.coverage_percent == b.coverage_percent
    assert a.efficiency_percent == b.efficiency_percent
    assert a.detected == b.detected
    assert a.num_vectors == b.num_vectors


# -- netlist cone/level helpers ----------------------------------------------


def test_fanout_cone_and_levels():
    nl = Netlist("cone")
    a = nl.add_pi("a")
    b = nl.add_pi("b")
    g1 = nl.add_gate(GateType.AND, [a, b])
    g2 = nl.add_gate(GateType.NOT, [g1])
    q = nl.new_net("q")
    nl.add_gate_to(GateType.DFF, q, [g2])
    g3 = nl.add_gate(GateType.OR, [q, b])
    nl.add_po(g3, "o")

    assert nl.fanout_cone(a) == {a, g1, g2, q, g3}
    assert nl.fanout_cone(a, through_dffs=False) == {a, g1, g2}
    assert nl.fanout_cone([g2]) == {g2, q, g3}

    levels = nl.levels()
    assert levels[a] == 0 and levels[q] == 0
    assert levels[g1] == 1 and levels[g2] == 2 and levels[g3] == 1

    order = nl.levelized_order()
    pos = {g.output: i for i, g in enumerate(order)}
    assert pos[g1] < pos[g2]
    assert len(order) == len(nl.topological_order())


def test_get_compiled_cache_and_staleness():
    nl = netlist_of(small_designs()["parity"])
    cn = get_compiled(nl)
    assert get_compiled(nl) is cn  # cached per netlist
    a = nl.pis[0]
    nl.add_gate(GateType.NOT, [a])
    assert cn.stale()
    cn2 = get_compiled(nl)
    assert cn2 is not cn
    assert len(cn2.order) == len(cn.order) + 1


def test_netvalues_mapping_behavior():
    nl = Netlist("nv")
    a = nl.add_pi("a")
    g = nl.add_gate(GateType.NOT, [a])
    nl.add_po(g, "o")
    sim = LogicSimulator(nl, backend="compiled")
    values = sim.step({a: (1, 0)})
    assert isinstance(values, NetValues)
    assert len(values) == nl.num_nets
    assert set(values) == set(range(nl.num_nets))
    assert values[g] == (0, 1)
    assert values.get(nl.num_nets + 5) is None
    with pytest.raises(KeyError):
        values[nl.num_nets + 5]


# -- backend selection --------------------------------------------------------


def test_backend_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    assert default_backend() == "arena"
    assert resolve_backend(None) == "arena"
    monkeypatch.setenv("REPRO_SIM_BACKEND", "interpreted")
    assert default_backend() == "interpreted"
    assert resolve_backend(None) == "interpreted"
    assert resolve_backend("compiled") == "compiled"


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        resolve_backend("bogus")
    nl = Netlist("x")
    nl.add_pi("a")
    with pytest.raises(ValueError):
        LogicSimulator(nl, backend="bogus")
    with pytest.raises(ValueError):
        FaultSimulator(nl, backend="bogus")
