"""Elaboration semantics: synthesized circuits must match Verilog semantics.

Uses the CircuitHarness to compare gate-level evaluation against Python
integer arithmetic, including hypothesis property tests over operand values.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import SynthesisError

from .conftest import CircuitHarness

word8 = st.integers(min_value=0, max_value=255)
word4 = st.integers(min_value=0, max_value=15)

MASK8 = 0xFF


def combi(expr, extra_decls="", width=8):
    """Harness for `y = <expr over a, b, c>` with 8-bit a/b and 1-bit c."""
    return CircuitHarness(f"""
    module m(input [7:0] a, input [7:0] b, input c,
             output [{width - 1}:0] y);
      {extra_decls}
      assign y = {expr};
    endmodule
    """)


class TestArithmetic:
    @settings(max_examples=40, deadline=None)
    @given(word8, word8)
    def test_add(self, a, b):
        assert combi("a + b").eval(a=a, b=b, c=0)["y"] == (a + b) & MASK8

    @settings(max_examples=40, deadline=None)
    @given(word8, word8)
    def test_sub(self, a, b):
        assert combi("a - b").eval(a=a, b=b, c=0)["y"] == (a - b) & MASK8

    @settings(max_examples=30, deadline=None)
    @given(word8, word8)
    def test_mul(self, a, b):
        assert combi("a * b").eval(a=a, b=b, c=0)["y"] == (a * b) & MASK8

    @settings(max_examples=20, deadline=None)
    @given(word8, word8, st.integers(0, 1))
    def test_add_with_carry_in(self, a, b, c):
        h = combi("a + b + c")
        assert h.eval(a=a, b=b, c=c)["y"] == (a + b + c) & MASK8

    def test_wider_lhs_captures_carry(self):
        h = CircuitHarness("""
        module m(input [7:0] a, input [7:0] b, output [8:0] y);
          assign y = a + b;
        endmodule
        """)
        assert h.eval(a=255, b=255)["y"] == 510

    def test_unary_minus(self):
        h = combi("-a")
        assert h.eval(a=1, b=0, c=0)["y"] == 255

    @settings(max_examples=20, deadline=None)
    @given(word8)
    def test_divide_by_power_of_two(self, a):
        assert combi("a / 4").eval(a=a, b=0, c=0)["y"] == a // 4

    @settings(max_examples=20, deadline=None)
    @given(word8)
    def test_modulo_power_of_two(self, a):
        assert combi("a % 8").eval(a=a, b=0, c=0)["y"] == a % 8

    def test_non_power_of_two_divisor_rejected(self):
        with pytest.raises(SynthesisError):
            combi("a / 3")


class TestBitwiseAndLogical:
    @settings(max_examples=30, deadline=None)
    @given(word8, word8)
    def test_and_or_xor(self, a, b):
        assert combi("a & b").eval(a=a, b=b, c=0)["y"] == a & b
        assert combi("a | b").eval(a=a, b=b, c=0)["y"] == a | b
        assert combi("a ^ b").eval(a=a, b=b, c=0)["y"] == a ^ b

    @settings(max_examples=20, deadline=None)
    @given(word8)
    def test_not(self, a):
        assert combi("~a").eval(a=a, b=0, c=0)["y"] == (~a) & MASK8

    @settings(max_examples=20, deadline=None)
    @given(word8, word8)
    def test_logical_ops(self, a, b):
        h = combi("(a && b) | (a || b)", width=1)
        expected = int(bool(a) and bool(b)) | int(bool(a) or bool(b))
        assert h.eval(a=a, b=b, c=0)["y"] == expected

    @settings(max_examples=20, deadline=None)
    @given(word8)
    def test_reductions(self, a):
        assert combi("&a", width=1).eval(a=a, b=0, c=0)["y"] == int(a == 255)
        assert combi("|a", width=1).eval(a=a, b=0, c=0)["y"] == int(a != 0)
        assert combi("^a", width=1).eval(a=a, b=0, c=0)["y"] == (
            bin(a).count("1") % 2
        )
        assert combi("!a", width=1).eval(a=a, b=0, c=0)["y"] == int(a == 0)


class TestComparisons:
    @settings(max_examples=40, deadline=None)
    @given(word8, word8)
    def test_all_comparisons(self, a, b):
        checks = {
            "a == b": a == b,
            "a != b": a != b,
            "a < b": a < b,
            "a <= b": a <= b,
            "a > b": a > b,
            "a >= b": a >= b,
        }
        for expr, expected in checks.items():
            got = combi(expr, width=1).eval(a=a, b=b, c=0)["y"]
            assert got == int(expected), expr


class TestShifts:
    @settings(max_examples=30, deadline=None)
    @given(word8, st.integers(0, 10))
    def test_variable_shift_left(self, a, amt):
        h = CircuitHarness("""
        module m(input [7:0] a, input [3:0] s, output [7:0] y);
          assign y = a << s;
        endmodule
        """)
        assert h.eval(a=a, s=amt)["y"] == (a << amt) & MASK8

    @settings(max_examples=30, deadline=None)
    @given(word8, st.integers(0, 10))
    def test_variable_shift_right(self, a, amt):
        h = CircuitHarness("""
        module m(input [7:0] a, input [3:0] s, output [7:0] y);
          assign y = a >> s;
        endmodule
        """)
        assert h.eval(a=a, s=amt)["y"] == (a >> amt) & MASK8

    @settings(max_examples=20, deadline=None)
    @given(word8)
    def test_constant_shifts(self, a):
        assert combi("a << 3").eval(a=a, b=0, c=0)["y"] == (a << 3) & MASK8
        assert combi("a >> 2").eval(a=a, b=0, c=0)["y"] == a >> 2


class TestSelectsAndConcat:
    @settings(max_examples=20, deadline=None)
    @given(word8)
    def test_part_select(self, a):
        h = CircuitHarness("""
        module m(input [7:0] a, output [3:0] y);
          assign y = a[6:3];
        endmodule
        """)
        assert h.eval(a=a)["y"] == (a >> 3) & 0xF

    @settings(max_examples=20, deadline=None)
    @given(word8, st.integers(0, 7))
    def test_dynamic_bit_select(self, a, idx):
        h = CircuitHarness("""
        module m(input [7:0] a, input [2:0] i, output y);
          assign y = a[i];
        endmodule
        """)
        assert h.eval(a=a, i=idx)["y"] == (a >> idx) & 1

    @settings(max_examples=20, deadline=None)
    @given(word4, word4)
    def test_concat(self, hi, lo):
        h = CircuitHarness("""
        module m(input [3:0] a, input [3:0] b, output [7:0] y);
          assign y = {a, b};
        endmodule
        """)
        assert h.eval(a=hi, b=lo)["y"] == (hi << 4) | lo

    def test_replication(self):
        h = CircuitHarness("""
        module m(input [1:0] a, output [7:0] y);
          assign y = {4{a}};
        endmodule
        """)
        assert h.eval(a=0b10)["y"] == 0b10101010

    def test_concat_lhs(self):
        h = CircuitHarness("""
        module m(input [7:0] a, output [3:0] hi, output [3:0] lo);
          assign {hi, lo} = a;
        endmodule
        """)
        out = h.eval(a=0xA5)
        assert out["hi"] == 0xA and out["lo"] == 0x5

    def test_ternary(self):
        h = combi("c ? a : b")
        assert h.eval(a=1, b=2, c=1)["y"] == 1
        assert h.eval(a=1, b=2, c=0)["y"] == 2


class TestAlwaysSemantics:
    def test_case_priority_and_default(self):
        h = CircuitHarness("""
        module m(input [1:0] s, input [3:0] a, output reg [3:0] y);
          always @(*)
            case (s)
              2'd0: y = a;
              2'd1: y = ~a;
              default: y = 4'd7;
            endcase
        endmodule
        """)
        assert h.eval(s=0, a=5)["y"] == 5
        assert h.eval(s=1, a=5)["y"] == 10
        assert h.eval(s=2, a=5)["y"] == 7
        assert h.eval(s=3, a=5)["y"] == 7

    def test_casez_wildcards(self):
        h = CircuitHarness("""
        module m(input [3:0] s, output reg [1:0] y);
          always @(*)
            casez (s)
              4'b1???: y = 2'd3;
              4'b01??: y = 2'd2;
              default: y = 2'd0;
            endcase
        endmodule
        """)
        assert h.eval(s=0b1010)["y"] == 3
        assert h.eval(s=0b0110)["y"] == 2
        assert h.eval(s=0b0010)["y"] == 0

    def test_default_then_override(self):
        h = CircuitHarness("""
        module m(input c, input [3:0] a, output reg [3:0] y);
          always @(*) begin
            y = 4'd0;
            if (c) y = a;
          end
        endmodule
        """)
        assert h.eval(c=0, a=9)["y"] == 0
        assert h.eval(c=1, a=9)["y"] == 9

    def test_blocking_sequencing(self):
        h = CircuitHarness("""
        module m(input [3:0] a, output reg [3:0] y);
          reg [3:0] t;
          always @(*) begin
            t = a + 4'd1;
            y = t + 4'd1;
          end
        endmodule
        """)
        assert h.eval(a=3)["y"] == 5

    def test_for_loop_unrolled(self):
        h = CircuitHarness("""
        module m(input [3:0] a, output reg [3:0] y);
          integer i;
          always @(*) begin
            y = 4'd0;
            for (i = 0; i < 4; i = i + 1)
              y[i] = a[3 - i];
          end
        endmodule
        """)
        assert h.eval(a=0b0011)["y"] == 0b1100

    def test_latch_detected(self):
        with pytest.raises(SynthesisError) as err:
            CircuitHarness("""
            module m(input c, input a, output reg y);
              always @(*)
                if (c) y = a;
            endmodule
            """)
        assert "latch" in str(err.value)

    def test_read_before_write_in_comb_is_latch(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input a, output reg y);
              always @(*) y = y ^ a;
            endmodule
            """)

    def test_multiple_drivers_rejected(self):
        with pytest.raises(Exception):
            CircuitHarness("""
            module m(input a, output y);
              assign y = a;
              assign y = ~a;
            endmodule
            """)

    def test_undeclared_signal_rejected(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input a, output y);
              assign y = ghost;
            endmodule
            """)


class TestSequential:
    def test_dff_with_enable_holds(self):
        h = CircuitHarness("""
        module m(input clk, input rst, input en, input [3:0] d,
                 output [3:0] q);
          reg [3:0] r;
          always @(posedge clk)
            if (rst) r <= 4'd0;
            else if (en) r <= d;
          assign q = r;
        endmodule
        """)
        h.clock(clk=0, rst=1, en=0, d=0)
        assert h.clock(clk=0, rst=0, en=1, d=9)["q"] == 0
        assert h.clock(clk=0, rst=0, en=0, d=5)["q"] == 9
        assert h.clock(clk=0, rst=0, en=0, d=5)["q"] == 9

    def test_nonblocking_swap(self):
        h = CircuitHarness("""
        module m(input clk, input rst, output [1:0] ab);
          reg a;
          reg b;
          always @(posedge clk)
            if (rst) begin
              a <= 1'b0;
              b <= 1'b1;
            end else begin
              a <= b;
              b <= a;
            end
          assign ab = {a, b};
        endmodule
        """)
        h.clock(clk=0, rst=1)
        assert h.clock(clk=0, rst=0)["ab"] == 0b01
        assert h.clock(clk=0, rst=0)["ab"] == 0b10
        assert h.clock(clk=0, rst=0)["ab"] == 0b01

    def test_nba_rhs_sees_old_value_after_blocking_mix(self):
        h = CircuitHarness("""
        module m(input clk, input rst, output [3:0] q);
          reg [3:0] r;
          always @(posedge clk)
            if (rst) r <= 4'd1;
            else r <= r + 4'd1;
          assign q = r;
        endmodule
        """)
        h.clock(clk=0, rst=1)
        assert h.clock(clk=0, rst=0)["q"] == 1
        assert h.clock(clk=0, rst=0)["q"] == 2

    def test_uninitialised_state_is_x(self):
        h = CircuitHarness("""
        module m(input clk, input d, output q);
          reg r;
          always @(posedge clk) r <= d;
          assign q = r;
        endmodule
        """)
        assert h.eval(clk=0, d=1)["q"] is None  # X before any clock


class TestHierarchyAndParams:
    def test_parameter_override(self):
        h = CircuitHarness("""
        module add1 #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y);
          assign y = a + 1;
        endmodule
        module top(input [7:0] a, output [7:0] y);
          add1 #(.W(8)) u(.a(a), .y(y));
        endmodule
        """)
        assert h.eval(a=7)["y"] == 8

    def test_port_width_adaptation(self):
        h = CircuitHarness("""
        module wide(input [7:0] i, output [7:0] o);
          assign o = i;
        endmodule
        module top(input [3:0] a, output [7:0] y);
          wide u(.i(a), .o(y));
        endmodule
        """)
        assert h.eval(a=0xF)["y"] == 0x0F

    def test_unconnected_input_ties_zero(self):
        h = CircuitHarness("""
        module leaf(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire t;
          leaf u(.i(), .o(t));
          assign y = t & a;
        endmodule
        """)
        assert h.eval(a=1)["y"] == 1

    def test_three_levels(self):
        h = CircuitHarness("""
        module l2(input [3:0] a, output [3:0] y);
          assign y = a ^ 4'b1111;
        endmodule
        module l1(input [3:0] a, output [3:0] y);
          wire [3:0] t;
          l2 u(.a(a), .y(t));
          assign y = t + 4'd1;
        endmodule
        module top(input [3:0] a, output [3:0] y);
          l1 u(.a(a), .y(y));
        endmodule
        """)
        assert h.eval(a=0b0101)["y"] == ((0b1010 + 1) & 0xF)
