"""BIST substrate tests."""

import pytest

from repro.atpg.bist import BistRun, Lfsr, Misr
from repro.designs import adder_source, counter_source, parity_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


class TestLfsr:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 7, 8, 16])
    def test_maximal_period(self, width):
        lfsr = Lfsr(width, seed=1)
        assert lfsr.period() == (1 << width) - 1

    def test_zero_state_excluded(self):
        lfsr = Lfsr(8, seed=0)
        assert lfsr.state != 0
        for _ in range(1000):
            assert lfsr.step() != 0

    def test_deterministic_for_seed(self):
        a = Lfsr(8, seed=42)
        b = Lfsr(8, seed=42)
        assert [a.step() for _ in range(20)] == [
            b.step() for _ in range(20)
        ]

    def test_bits_lsb_first(self):
        lfsr = Lfsr(4, seed=0b1010)
        assert lfsr.bits() == [0, 1, 0, 1]

    def test_width_without_exact_taps(self):
        lfsr = Lfsr(27, seed=3)  # no 27-entry in the table: fallback taps
        seen = {lfsr.step() for _ in range(1000)}
        assert len(seen) > 900  # still a long, non-degenerate sequence

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(1)


class TestMisr:
    def test_signature_depends_on_data(self):
        a = Misr(16)
        b = Misr(16)
        for word in (1, 2, 3):
            a.absorb(word)
        for word in (1, 2, 4):
            b.absorb(word)
        assert a.signature != b.signature

    def test_signature_depends_on_order(self):
        a = Misr(16)
        b = Misr(16)
        for word in (5, 9):
            a.absorb(word)
        for word in (9, 5):
            b.absorb(word)
        assert a.signature != b.signature

    def test_deterministic(self):
        a = Misr(8)
        b = Misr(8)
        for word in range(10):
            a.absorb(word)
            b.absorb(word)
        assert a.signature == b.signature


class TestBistRun:
    def test_combinational_coverage_high(self):
        nl = netlist_of(parity_source(8))
        report = BistRun(nl).run(patterns=64)
        assert report.coverage_percent > 95.0
        assert report.detected + len(report.resistant) == report.total_faults

    def test_signature_is_reproducible(self):
        nl = netlist_of(adder_source())
        r1 = BistRun(nl, seed=7).run(patterns=32)
        r2 = BistRun(nl, seed=7).run(patterns=32)
        assert r1.signature == r2.signature

    def test_faulty_signature_differs(self):
        # Compute the good signature and the signature of a machine whose
        # output response is corrupted by one detected fault.
        nl = netlist_of(adder_source())
        run = BistRun(nl, seed=7)
        report = run.run(patterns=32)
        assert report.detected > 0
        # Any detected fault corrupts at least one response word, so a MISR
        # over the corrupted stream differs with overwhelming probability;
        # verified indirectly: the good signature is stable and nonzero.
        assert report.signature != 0

    def test_sequential_design_with_reset(self):
        nl = netlist_of(counter_source())
        report = BistRun(nl, reset_input="rst").run(patterns=128)
        assert report.coverage_percent > 50.0

    def test_more_patterns_never_reduce_coverage(self):
        nl = netlist_of(adder_source())
        short = BistRun(nl, seed=3).run(patterns=8)
        long = BistRun(nl, seed=3).run(patterns=128)
        assert long.coverage_percent >= short.coverage_percent

    def test_resistant_faults_reported(self):
        # A wide AND-reduction is the textbook random-resistant structure.
        src = """
        module m(input [15:0] a, output y);
          assign y = &a;
        endmodule
        """
        nl = netlist_of(src)
        report = BistRun(nl, seed=5).run(patterns=64)
        assert report.resistant  # &a == 1 needs all-ones: ~2^-16 per pattern
        names = report.resistant_names(nl)
        assert names

    def test_region_filter(self):
        src = """
        module leaf(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire t;
          leaf u1(.i(a), .o(t));
          assign y = t & a;
        endmodule
        """
        nl = netlist_of(src)
        report = BistRun(nl).run(patterns=16, region="u1.")
        full = BistRun(nl).run(patterns=16)
        assert report.total_faults < full.total_faults
