"""Campaign subsystem: spec, DOE, evolutionary search, model, runner.

The statistical properties the report depends on are asserted directly:
every two-level fraction is balanced and pairwise-orthogonal (so main
effects are unconfounded), the evolutionary best-so-far history is
monotone under elitism, and the least-squares fit recovers planted
effects from synthetic trials.  The runner tests execute real (tiny)
ATPG trials through the serve worker entry point and check fingerprint
coalescing and store warm-serving end to end.
"""

import json
import os
import random

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignSpecError,
    EvolutionaryDSE,
    TrialDB,
    build_design,
    campaign_dir,
    fit_report,
    two_level_fraction,
)
from repro.campaign.design import code_level, design_matrix
from repro.campaign.model import solve_least_squares, trial_fitness, \
    trial_score
from repro.obs import get_registry

SRC = (
    "module leaf(input a, input b, input c, output y, output z);\n"
    "  wire t;\n"
    "  assign t = a & b;\n"
    "  assign y = t ^ c;\n"
    "  assign z = t | a;\n"
    "endmodule\n"
    "module top(input a, input b, input c, output y, output z);\n"
    "  leaf u0(.a(a), .b(b), .c(c), .y(y), .z(z));\n"
    "endmodule\n"
)


def tiny_spec(**overrides):
    fields = {
        "name": "unit",
        "source": SRC,
        "top": "top",
        "mut": "leaf",
        "factors": {"backtrack_limit": [5, 10],
                    "fault_model": ["stuck", "transient"]},
        "base": {"frames": 1, "random_length": 4, "transient_sample": 8},
        "max_trials": 4,
    }
    fields.update(overrides)
    return CampaignSpec.from_dict(fields)


# -- spec --------------------------------------------------------------------


class TestSpec:
    def test_load_toml_and_json(self, tmp_path):
        toml = tmp_path / "c.toml"
        toml.write_text(
            'name = "t1"\ndesign = "arm2"\nmut = "arm_alu"\n'
            "[factors]\nframes = [1, 2]\n")
        spec = CampaignSpec.load(str(toml))
        assert spec.name == "t1" and spec.factors == {"frames": [1, 2]}

        as_json = tmp_path / "c.json"
        as_json.write_text(json.dumps({
            "name": "t2", "design": "arm2", "mut": "arm_alu",
            "factors": {"frames": [1, 2]}}))
        assert CampaignSpec.load(str(as_json)).name == "t2"

    def test_source_file_is_inlined(self, tmp_path):
        src = tmp_path / "d.v"
        src.write_text(SRC)
        spec = CampaignSpec.from_dict({
            "name": "t", "source_file": str(src), "mut": "leaf",
            "factors": {"frames": [1, 2]}})
        assert spec.source == SRC

    @pytest.mark.parametrize("mutation, message", [
        ({"name": ""}, "name"),
        ({"name": "a/b"}, "separators"),
        ({"design": "arm2"}, "exactly one"),
        ({"mode": "nope"}, "mode"),
        ({"factors": {}}, "factors"),
        ({"factors": {"bogus": [1, 2]}}, "unknown factor"),
        ({"factors": {"frames": [1]}}, ">= 2 levels"),
        ({"factors": {"frames": [1, 1]}}, "duplicate"),
        ({"mut": None}, "mut"),
        ({"replicates": 0}, "replicates"),
        ({"population": 1}, "population"),
        ({"mutation_rate": 1.5}, "mutation_rate"),
        ({"elite": 8}, "elite"),
        ({"max_trials": 0}, "max_trials"),
        ({"base": {"backtrack_limit": 7}}, "both fixed"),
        ({"unknown_knob": 3}, "unknown campaign fields"),
    ])
    def test_validation_errors(self, mutation, message):
        fields = {
            "name": "ok", "source": SRC, "mut": "leaf",
            "factors": {"backtrack_limit": [5, 10]},
        }
        fields.update(mutation)
        with pytest.raises(CampaignSpecError, match=message):
            CampaignSpec.from_dict(fields)

    def test_ordered_factors_is_declaration_independent(self):
        a = tiny_spec(base={}, factors={"frames": [1, 2],
                                        "backtrack_limit": [5, 10]})
        b = tiny_spec(base={}, factors={"backtrack_limit": [5, 10],
                                        "frames": [1, 2]})
        assert list(a.ordered_factors()) == list(b.ordered_factors())


# -- factorial design --------------------------------------------------------


class TestDesign:
    @pytest.mark.parametrize("k, runs", [
        (3, 8), (4, 8), (5, 8), (7, 8), (4, 16), (6, 16), (3, 4),
    ])
    def test_fraction_balance_and_orthogonality(self, k, runs):
        rows = two_level_fraction(k, runs)
        assert len(rows) == runs
        assert len(set(rows)) == runs  # distinct runs
        cols = list(zip(*rows))
        for col in cols:
            assert sum(col) == 0, "column not balanced"
        for i in range(k):
            for j in range(i + 1, k):
                dot = sum(a * b for a, b in zip(cols[i], cols[j]))
                assert dot == 0, f"columns {i},{j} not orthogonal"

    def test_fraction_rejects_bad_runs(self):
        with pytest.raises(ValueError, match="power of two"):
            two_level_fraction(3, 6)
        with pytest.raises(ValueError, match="full factorial"):
            two_level_fraction(2, 8)
        with pytest.raises(ValueError, match="alias"):
            two_level_fraction(8, 4)  # 4 runs cannot host 8 factors

    def test_build_design_two_level_respects_cap(self):
        factors = {f"f{i}": [0, 1] for i in range(5)}
        # 2^5 = 32 full; cap 8 -> a 2^(5-2) fraction.
        design = build_design({"backtrack_limit": [1, 2],
                               "frames": [1, 2],
                               "random_length": [4, 8],
                               "transient_sample": [8, 16],
                               "use_piers": [False, True]}, 8)
        assert len(design) == 8
        del factors
        coded = design_matrix(design, {
            "backtrack_limit": [1, 2], "frames": [1, 2],
            "random_length": [4, 8], "transient_sample": [8, 16],
            "use_piers": [False, True]})
        for col in zip(*coded):
            assert sum(col) == 0

    def test_build_design_full_when_it_fits(self):
        design = build_design({"frames": [1, 2],
                               "backtrack_limit": [5, 10]}, 16)
        assert len(design) == 4
        assert len({tuple(sorted(d.items())) for d in design}) == 4

    def test_build_design_mixed_level_subsample_is_seeded(self):
        factors = {"frames": [1, 2, 3], "backtrack_limit": [5, 10]}
        full = build_design(factors, None)
        assert len(full) == 6
        a = build_design(factors, 4, seed=1)
        b = build_design(factors, 4, seed=1)
        assert a == b and len(a) == 4
        as_keys = {tuple(sorted(d.items())) for d in full}
        assert {tuple(sorted(d.items())) for d in a} <= as_keys

    def test_code_level_spacing(self):
        assert code_level(1, [1, 2]) == -1.0
        assert code_level(2, [1, 2]) == 1.0
        assert code_level(2, [1, 2, 3]) == 0.0


# -- evolutionary search -----------------------------------------------------


def toy_space():
    return {"a": [0, 1, 2, 3], "b": [0, 1, 2, 3], "c": [0, 1]}


def toy_fitness(configs):
    # Peak at a=3, b=0, c=1; deterministic, no noise.
    return [cfg["a"] - cfg["b"] + 10 * cfg["c"] for cfg in configs]


class TestEvolve:
    def test_history_is_monotone_with_elitism(self):
        calls = []

        def evaluate(configs):
            calls.append(len(configs))
            return toy_fitness(configs)

        dse = EvolutionaryDSE(toy_space(), evaluate, population=6,
                              generations=8, elite=1, seed=5)
        result = dse.run()
        assert len(result.history) == 8
        assert all(b >= a for a, b in zip(result.history,
                                          result.history[1:]))
        assert result.best_fitness == max(result.history)
        # Batched evaluation: one evaluate_many call per generation at
        # most, and never more genomes than the population.
        assert len(calls) <= 8
        assert all(n <= 6 for n in calls)
        assert result.evaluations == sum(calls)

    def test_finds_the_optimum_on_the_toy_space(self):
        dse = EvolutionaryDSE(toy_space(), toy_fitness, population=8,
                              generations=12, elite=2, seed=3)
        result = dse.run()
        assert result.best_fitness == 13  # a=3, b=0, c=1
        assert result.best_config == {"a": 3, "b": 0, "c": 1}

    def test_same_seed_same_trajectory(self):
        runs = [EvolutionaryDSE(toy_space(), toy_fitness, population=6,
                                generations=5, seed=11).run()
                for _ in range(2)]
        assert runs[0].history == runs[1].history
        assert runs[0].best_config == runs[1].best_config

    def test_cache_prevents_reevaluation(self):
        seen = []

        def evaluate(configs):
            seen.extend(tuple(sorted(c.items())) for c in configs)
            return toy_fitness(configs)

        EvolutionaryDSE(toy_space(), evaluate, population=6,
                        generations=10, seed=2).run()
        assert len(seen) == len(set(seen))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="population"):
            EvolutionaryDSE(toy_space(), toy_fitness, population=1)
        with pytest.raises(ValueError, match="elite"):
            EvolutionaryDSE(toy_space(), toy_fitness, population=4,
                            elite=4)
        with pytest.raises(RuntimeError, match="fitnesses"):
            EvolutionaryDSE(toy_space(), lambda cfgs: [1.0],
                            population=4, generations=1, seed=0).run()


# -- regression model --------------------------------------------------------


class TestModel:
    def test_solver_exact_system(self):
        rows = [[1.0, -1.0], [1.0, 1.0]]
        beta = solve_least_squares(rows, [1.0, 5.0])
        assert beta == pytest.approx([3.0, 2.0])

    def test_solver_zero_pivot_degrades(self):
        # Second column constant-zero: its coefficient must be 0.
        rows = [[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]]
        beta = solve_least_squares(rows, [2.0, 2.0, 2.0])
        assert beta == pytest.approx([2.0, 0.0])

    def test_trial_score_by_fault_model(self):
        assert trial_score({"coverage": 80.0, "config": {}}) == 80.0
        assert trial_score({"seu_coverage": 30.0,
                            "config": {"fault_model": "transient"}}) == 30.0
        assert trial_score({"coverage": 80.0, "seu_coverage": 40.0,
                            "config": {"fault_model": "both"}}) == 60.0
        assert trial_score({"coverage": 80.0, "error": "boom",
                            "config": {}}) is None
        assert trial_fitness({"coverage": 50.0, "cost_s": 2.0,
                              "config": {}}) == 25.0
        assert trial_fitness({"error": "x", "config": {}}) == 0.0

    def test_fit_recovers_planted_effects(self):
        factors = {"backtrack_limit": [10, 100], "frames": [1, 2]}
        design = build_design(factors, None)
        rows = []
        for cfg in design * 3:  # replicated full factorial
            x1 = code_level(cfg["backtrack_limit"],
                            factors["backtrack_limit"])
            x2 = code_level(cfg["frames"], factors["frames"])
            rows.append({
                "config": dict(cfg),
                "coverage": 50.0 + 8.0 * x1 + 2.0 * x2,
                "cost_s": 4.0 + 1.5 * x1,
                "error": None,
            })
        report = fit_report(rows, factors)
        assert report.trials == len(rows)
        by_name = {e["factor"]: e for e in report.effects}
        assert by_name["backtrack_limit"]["coverage_effect"] == \
            pytest.approx(8.0)
        assert by_name["backtrack_limit"]["cost_effect"] == \
            pytest.approx(1.5)
        assert by_name["frames"]["coverage_effect"] == pytest.approx(2.0)
        # Ranked by |coverage effect|.
        assert report.effects[0]["factor"] == "backtrack_limit"
        assert report.r2_coverage == pytest.approx(1.0)
        assert report.recommended is not None

    def test_fit_skips_errored_and_off_design_rows(self):
        factors = {"frames": [1, 2]}
        rows = [
            {"config": {"frames": 1}, "coverage": 10.0, "error": None},
            {"config": {"frames": 2}, "coverage": 20.0, "error": None},
            {"config": {"frames": 9}, "coverage": 99.0, "error": None},
            {"config": {"frames": 1}, "coverage": None, "error": "boom"},
        ]
        report = fit_report(rows, factors)
        assert report.trials == 2

    def test_fit_empty(self):
        report = fit_report([], {"frames": [1, 2]})
        assert report.trials == 0 and report.effects == []


# -- trial DB ----------------------------------------------------------------


class TestTrialDB:
    def test_round_trip_and_torn_tail(self, tmp_path):
        db = TrialDB(str(tmp_path / "trials.jsonl"))
        db.append({"phase": "factorial", "config": {"frames": 1}})
        db.append({"phase": "evolutionary", "error": "boom",
                   "served_from": "coalesced"})
        with open(db.path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # crashed writer
        rows = db.rows()
        assert len(rows) == 2
        assert all("ts" in row for row in rows)
        summary = db.summary()
        assert summary["trials"] == 2
        assert summary["failed"] == 1
        assert summary["coalesced"] == 1
        assert summary["phases"] == {"factorial": 1, "evolutionary": 1}

    def test_missing_file_is_empty(self, tmp_path):
        db = TrialDB(str(tmp_path / "absent.jsonl"))
        assert db.rows() == []
        assert db.summary()["trials"] == 0

    def test_campaign_dir_is_under_the_cache(self):
        assert campaign_dir("x").endswith(os.path.join("campaigns", "x"))


# -- runner ------------------------------------------------------------------


class TestRunner:
    def test_schedule_is_deterministic(self):
        spec = tiny_spec()
        factors = spec.ordered_factors()
        schedules = [
            [CampaignRunner(s, local=True).job_spec_dict(cfg)
             for cfg in build_design(factors, s.max_trials, s.seed)]
            for s in (tiny_spec(), tiny_spec())
        ]
        assert schedules[0] == schedules[1]
        # every trial inherits the campaign seed
        assert all(d["seed"] == spec.seed for d in schedules[0])

    def test_local_end_to_end_with_coalescing(self):
        get_registry().reset()
        spec = tiny_spec(replicates=2)
        runner = CampaignRunner(spec, local=True)
        summary = runner.run()
        assert summary["factorial"]["points"] == 4
        assert summary["factorial"]["trials"] == 8
        assert summary["factorial"]["failed"] == 0
        rows = runner.db.rows()
        assert len(rows) == 8
        # The replicate of each point coalesces onto the first execution.
        served = [row["served_from"] for row in rows]
        assert served.count("pipeline") == 4
        assert served.count("coalesced") == 4
        snap = get_registry().snapshot()
        assert snap["campaign.trials_run"]["value"] == 8
        assert snap["campaign.trials_coalesced"]["value"] == 4
        assert snap["campaign.seu_injections"]["value"] > 0
        # Report fits both factors and recommends an observed config.
        report = summary["report"]
        assert len(report["effects"]) == 2
        assert report["recommended"] is not None

    def test_second_run_is_store_warmed(self):
        spec = tiny_spec()
        CampaignRunner(spec, local=True).run()
        runner = CampaignRunner(spec, local=True)
        runner.run()
        fresh = [row for row in runner.db.rows()[4:]
                 if row["served_from"] == "pipeline"]
        assert fresh == []  # every trial warm-served from the store

    def test_evolutionary_phase_records_trials(self):
        spec = tiny_spec(mode="evolutionary", population=3, generations=2,
                         seed=9)
        runner = CampaignRunner(spec, local=True)
        summary = runner.run()
        evo = summary["evolutionary"]
        assert evo["generations"] == 2
        assert len(evo["history"]) == 2
        assert evo["history"][0] <= evo["history"][1] or \
            evo["history"][0] == pytest.approx(evo["history"][1])
        assert all(row["phase"] == "evolutionary"
                   for row in runner.db.rows())
        assert set(evo["best_config"]) == set(spec.factors)

    def test_invalid_trial_spec_records_error(self):
        spec = tiny_spec(base={},
                         factors={"frames": [0, -1],
                                  "backtrack_limit": [5, 10]})
        runner = CampaignRunner(spec, local=True)
        rows = runner.run_trials(build_design(spec.ordered_factors(),
                                              None), "factorial")
        assert all(row["error"] for row in rows)
        assert all(row["served_from"] == "error" for row in rows)
        assert all(row["fitness"] == 0.0 for row in rows)


# -- client retry ------------------------------------------------------------


class TestSubmitRetry:
    def _client(self, outcomes):
        from repro.serve.client import ServeClient

        client = ServeClient("http://127.0.0.1:1")
        calls = {"n": 0}

        def fake_submit(spec, traceparent=None):
            outcome = outcomes[min(calls["n"], len(outcomes) - 1)]
            calls["n"] += 1
            if isinstance(outcome, Exception):
                raise outcome
            return outcome
        client.submit = fake_submit
        return client, calls

    def test_retries_429_until_success(self):
        from repro.serve.client import ServeError

        ok = {"job": {"id": "j1"}}
        client, calls = self._client(
            [ServeError(429, "busy", retry_after=1),
             ServeError(429, "busy"), ok])
        sleeps = []
        result = client.submit_with_retry(
            {}, rng=random.Random(0), sleep=sleeps.append)
        assert result is ok
        assert calls["n"] == 3
        assert len(sleeps) == 2
        # Retry-After floors the first delay; everything stays capped.
        assert sleeps[0] >= 1.0
        assert all(s <= 10.0 for s in sleeps)

    def test_backoff_grows_and_is_capped(self):
        from repro.serve.client import ServeError

        client, _calls = self._client(
            [ServeError(429, "busy")] * 8 + [{"job": {"id": "j"}}])
        sleeps = []
        client.submit_with_retry({}, rng=random.Random(1),
                                 sleep=sleeps.append, base_delay=1.0,
                                 max_delay=4.0)
        assert len(sleeps) == 8
        assert all(s <= 4.0 for s in sleeps)
        assert max(sleeps) > sleeps[0]  # exponential growth before cap

    def test_gives_up_after_max_retries(self):
        from repro.serve.client import ServeError

        client, calls = self._client([ServeError(429, "busy")])
        with pytest.raises(ServeError):
            client.submit_with_retry({}, max_retries=3,
                                     rng=random.Random(0),
                                     sleep=lambda _s: None)
        assert calls["n"] == 4  # initial attempt + 3 retries

    def test_non_429_raises_immediately(self):
        from repro.serve.client import ServeError

        client, calls = self._client([ServeError(400, "bad spec")])
        with pytest.raises(ServeError, match="400"):
            client.submit_with_retry({}, rng=random.Random(0),
                                     sleep=lambda _s: None)
        assert calls["n"] == 1


# -- CLI ---------------------------------------------------------------------


class TestCampaignCli:
    def test_run_status_report(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "unit.json"
        spec_path.write_text(json.dumps({
            "name": "cli-unit",
            "source_file": None,
            "source": SRC,
            "top": "top",
            "mut": "leaf",
            "max_trials": 4,
            "factors": {"backtrack_limit": [5, 10],
                        "fault_model": ["stuck", "transient"]},
            "base": {"frames": 1, "random_length": 4,
                     "transient_sample": 8},
        }))
        assert main(["campaign", "run", str(spec_path), "--local"]) == 0
        out = capsys.readouterr().out
        assert "campaign cli-unit" in out
        assert "Factor effects" in out
        assert "recommended config" in out

        assert main(["campaign", "status", "cli-unit"]) == 0
        out = capsys.readouterr().out
        assert "4 trials" in out

        # report works from the bare name via the saved resolved spec.
        assert main(["campaign", "report", "cli-unit", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["trials"] == 4
        assert len(report["effects"]) == 2

    def test_profile_surfaces_campaign_counters(self):
        from repro.cli import _PROFILE_METRIC_PREFIXES

        assert "campaign." in _PROFILE_METRIC_PREFIXES
