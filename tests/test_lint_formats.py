"""Output format tests: text, JSON and SARIF 2.1.0 shape."""

import json

import jsonschema

from repro.hierarchy.design import Design
from repro.lint import (
    default_registry,
    render_json,
    render_sarif,
    render_text,
    run_lint,
)
from repro.lint.formats import sarif_dict
from repro.verilog.parser import parse_source

BUGGY = """
module m(input a, input spare, output y, output z);
  wire ghost;
  assign y = a & ghost;
endmodule
"""

# The subset of the SARIF 2.1.0 schema that GitHub code scanning requires;
# the full schema is not vendored, so the shape contract is pinned here.
SARIF_SHAPE = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string", "pattern": "sarif-schema-2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id", "shortDescription",
                                                "defaultConfiguration",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "level", "message",
                                         "locations"],
                            "properties": {
                                "level": {
                                    "enum": ["none", "note", "warning",
                                             "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def result_for(src=BUGGY, **kw):
    design = Design(parse_source(src))
    return run_lint(design, files={"m": "m.v"}, **kw)


class TestText:
    def test_one_block_per_finding_plus_summary(self):
        res = result_for()
        lines = render_text(res).splitlines()
        expected = sum(1 + len(d.trace) + (1 if d.witness else 0)
                       for d in res.diagnostics) + 1
        assert len(lines) == expected
        assert lines[-1] == res.summary()
        assert any(line.startswith("m.v:m:") for line in lines)

    def test_trace_hops_render_indented(self):
        res = result_for()
        lines = render_text(res).splitlines()
        hops = [line for line in lines if line.startswith("  #")]
        assert hops  # W101/W102 findings carry root-cause hops
        assert any("justification endpoint" in line or
                   "propagation endpoint" in line for line in hops)


class TestJson:
    def test_round_trips_and_counts(self):
        res = result_for()
        payload = json.loads(render_json(res))
        assert payload["tool"] == "repro-lint"
        assert len(payload["findings"]) == len(res.diagnostics)
        assert payload["counts"] == res.counts()
        assert payload["by_rule"] == res.by_rule()
        first = payload["findings"][0]
        assert {"rule", "severity", "message", "module", "line",
                "file"} <= set(first)


class TestSarif:
    def test_shape_against_2_1_0_schema(self):
        log = sarif_dict(result_for())
        jsonschema.validate(log, SARIF_SHAPE)

    def test_all_registry_rules_listed(self):
        log = sarif_dict(result_for())
        listed = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert set(default_registry().ids()) <= listed

    def test_results_reference_listed_rules(self):
        log = sarif_dict(result_for())
        run = log["runs"][0]
        listed = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert run["results"]
        for result in run["results"]:
            assert result["ruleId"] in listed

    def test_level_mapping_and_locations(self):
        log = sarif_dict(result_for())
        by_rule = {r["ruleId"]: r for r in log["runs"][0]["results"]}
        assert by_rule["W101"]["level"] == "error"
        assert by_rule["W102"]["level"] == "warning"
        loc = by_rule["W102"]["locations"][0]
        physical = loc["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "m.v"
        assert physical["region"]["startLine"] > 0
        assert loc["logicalLocations"][0]["name"] == "m.spare"

    def test_info_maps_to_note(self):
        src = """
module m(input clk, input d, output reg q);
  always @(posedge clk) begin
    if (1'b0)
      q <= d;
    else
      q <= ~d;
  end
endmodule
"""
        log = sarif_dict(result_for(src))
        levels = {r["ruleId"]: r["level"]
                  for r in log["runs"][0]["results"]}
        assert levels.get("W009") == "note"

    def test_trace_becomes_related_locations(self):
        log = sarif_dict(result_for())
        by_rule = {r["ruleId"]: r for r in log["runs"][0]["results"]}
        related = by_rule["W002"].get("relatedLocations")
        assert related
        assert all("physicalLocation" in entry for entry in related)

    def test_render_is_valid_json(self):
        text = render_sarif(result_for())
        assert json.loads(text)["version"] == "2.1.0"
