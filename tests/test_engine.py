"""ATPG engine tests: the full random + deterministic flow and reporting."""


from repro.atpg.engine import AtpgEngine, AtpgOptions, SequentialAtpg
from repro.atpg.faults import build_fault_list
from repro.designs import adder_source, counter_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


class TestOptions:
    def test_default_schedule_capped_by_max_frames(self):
        opts = AtpgOptions(max_frames=5)
        sched = opts.schedule()
        assert sched[-1] == 5
        assert all(f <= 5 for f in sched)
        assert sched == sorted(sched)

    def test_explicit_schedule(self):
        opts = AtpgOptions(max_frames=8, frame_schedule=[2, 8])
        assert opts.schedule() == [2, 8]

    def test_schedule_appends_max(self):
        opts = AtpgOptions(max_frames=7, frame_schedule=[2, 3])
        assert opts.schedule() == [2, 3, 7]


class TestCombinationalRun:
    def test_adder_full_coverage(self):
        nl = netlist_of(adder_source())
        report = AtpgEngine(nl, AtpgOptions(max_frames=1)).run()
        assert report.coverage_percent == 100.0
        assert report.efficiency_percent == 100.0
        assert report.detected == report.total_faults
        assert report.aborted == 0

    def test_accounting_adds_up(self):
        nl = netlist_of(fsm_source())
        report = AtpgEngine(
            nl, AtpgOptions(max_frames=8, backtrack_limit=4000,
                            fault_time_limit=5.0)
        ).run()
        assert (report.detected + report.untestable + report.aborted
                == report.total_faults)
        assert report.random_detected <= report.detected
        assert 0 <= report.coverage_percent <= 100
        assert report.coverage_percent <= report.efficiency_percent

    def test_random_phase_disabled(self):
        nl = netlist_of(adder_source())
        report = AtpgEngine(
            nl, AtpgOptions(max_frames=1, random_sequences=0)
        ).run()
        assert report.random_detected == 0
        assert report.coverage_percent == 100.0

    def test_deterministic_given_seed(self):
        nl = netlist_of(fsm_source())
        opts = dict(max_frames=4, seed=5, backtrack_limit=100)
        r1 = AtpgEngine(nl, AtpgOptions(**opts)).run()
        r2 = AtpgEngine(nl, AtpgOptions(**opts)).run()
        assert r1.detected == r2.detected
        assert r1.num_tests == r2.num_tests


class TestSequentialRun:
    def test_fsm_high_efficiency(self):
        nl = netlist_of(fsm_source())
        report = AtpgEngine(
            nl,
            AtpgOptions(max_frames=8, backtrack_limit=5000,
                        fault_time_limit=5.0),
        ).run()
        # Every fault is either detected or proven untestable.
        assert report.efficiency_percent == 100.0
        assert report.coverage_percent > 70.0

    def test_fault_sample(self):
        nl = netlist_of(counter_source())
        report = AtpgEngine(
            nl, AtpgOptions(max_frames=4, fault_sample=10)
        ).run()
        assert report.total_faults == 10

    def test_region_restriction(self):
        src = """
        module leaf(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire t;
          leaf u1(.i(a), .o(t));
          assign y = t & a;
        endmodule
        """
        nl = netlist_of(src)
        all_report = AtpgEngine(nl, AtpgOptions(max_frames=1)).run()
        region_report = AtpgEngine(
            nl, AtpgOptions(max_frames=1, fault_region="u1.")
        ).run()
        assert 0 < region_report.total_faults < all_report.total_faults

    def test_total_time_limit_abandons(self):
        nl = netlist_of(fsm_source())
        report = AtpgEngine(
            nl,
            AtpgOptions(max_frames=8, total_time_limit=0.0,
                        random_sequences=0),
        ).run()
        # Everything beyond the budget counts as aborted/unattempted.
        assert report.unattempted == report.total_faults
        assert report.detected == 0

    def test_tests_recorded(self):
        nl = netlist_of(counter_source())
        engine = AtpgEngine(nl, AtpgOptions(max_frames=6))
        report = engine.run()
        assert report.num_tests == len(engine.tests)
        assert report.num_vectors == sum(len(v) for v, _ in engine.tests)
        for vectors, init in engine.tests:
            for vec in vectors:
                assert all(pi in nl.pis for pi in vec)


class TestSequentialAtpgEscalation:
    def test_models_cached_per_depth(self):
        nl = netlist_of(fsm_source())
        seq = SequentialAtpg(nl, AtpgOptions(max_frames=4))
        m1 = seq.model(3)
        m2 = seq.model(3)
        assert m1 is m2
        assert seq.model(4) is not m1

    def test_generate_accumulates_time(self):
        nl = netlist_of(fsm_source())
        seq = SequentialAtpg(
            nl, AtpgOptions(max_frames=4, frame_schedule=[1, 2, 4])
        )
        # A fault needing several frames accumulates cpu across depths.
        faults = build_fault_list(nl)
        result = seq.generate(faults[0])
        assert result.status in ("detected", "untestable", "aborted")
        assert result.cpu_seconds >= 0


class TestReportRow:
    def test_as_row_fields(self):
        nl = netlist_of(adder_source())
        report = AtpgEngine(nl, AtpgOptions(max_frames=1)).run()
        row = report.as_row()
        assert row["name"] == nl.name
        assert row["cov%"] == 100.0
        assert set(row) == {
            "name", "faults", "detected", "cov%", "eff%", "tgen_s",
            "total_s", "tests", "vectors",
        }
