"""Property-based tests over randomly generated module hierarchies."""

import random

from hypothesis import given, settings, strategies as st

from repro.hierarchy import ChainDB, Design
from repro.verilog.parser import parse_source


def random_hierarchy_source(seed, max_modules=6):
    """Generate a random acyclic module hierarchy of 1-bit pass blocks."""
    rng = random.Random(seed)
    count = rng.randint(2, max_modules)
    chunks = []
    # Module i may instantiate modules with larger indices (acyclic).
    for i in range(count):
        children = [
            j for j in range(i + 1, count) if rng.random() < 0.5
        ]
        lines = [f"module m{i}(input i_in, output i_out);"]
        prev = "i_in"
        for k, child in enumerate(children):
            wire = f"w{k}"
            lines.append(f"  wire {wire};")
            lines.append(
                f"  m{child} u{k}(.i_in({prev}), .i_out({wire}));"
            )
            prev = wire
        lines.append(f"  assign i_out = ~{prev};")
        lines.append("endmodule")
        chunks.append("\n".join(lines))
    return "\n".join(chunks), count


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_depth_consistent_with_paths(seed):
    src, count = random_hierarchy_source(seed)
    design = Design(parse_source(src), top="m0")
    for name in design.module_names():
        paths = design.paths_to(name)
        if not paths:
            continue
        assert design.depth(name) == min(p.depth for p in paths)
        for path in paths:
            assert path.modules[0] == "m0"
            assert path.leaf_module == name
            assert len(path.modules) == len(path.insts) + 1


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_modules_under_closed(seed):
    src, count = random_hierarchy_source(seed)
    design = Design(parse_source(src), top="m0")
    for name in design.module_names():
        under = design.modules_under(name)
        assert name in under
        for member in under:
            for _, child in design.children(member):
                assert child in under


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_parents_children_inverse(seed):
    src, count = random_hierarchy_source(seed)
    design = Design(parse_source(src), top="m0")
    for name in design.module_names():
        for inst_name, child in design.children(name):
            assert (name, inst_name) in design.parents(child)
        for parent, inst_name in design.parents(name):
            assert (inst_name, name) in design.children(parent)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_chains_have_no_orphans(seed):
    """Every module in a generated hierarchy is chain-clean: all used
    signals driven, all driven signals used (by construction)."""
    src, count = random_hierarchy_source(seed)
    design = Design(parse_source(src), top="m0")
    db = ChainDB(design)
    reachable = design.modules_under("m0")
    for name in reachable:
        chains = db.chains(name)
        assert chains.undriven_signals() == []
        assert chains.unused_signals() == []


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_hierarchies_synthesize_and_invert(seed):
    from repro.synth import synthesize
    from repro.atpg.simulator import LogicSimulator

    src, count = random_hierarchy_source(seed)
    design = Design(parse_source(src), top="m0")
    netlist = synthesize(design)
    sim = LogicSimulator(netlist)
    out0 = sim.step_scalar({"i_in": 0})["i_out"]
    out1 = sim.step_scalar({"i_in": 1})["i_out"]
    # The chain is a composition of inverters: outputs must be complementary
    # and binary.
    assert {out0, out1} == {0, 1}
