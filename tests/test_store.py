"""The persistent artifact store: fingerprints, robustness, equivalence.

The store must be invisible except for speed: every test here checks
either that a warm read reproduces the cold computation exactly, or that
a damaged/disabled store degrades to a recompute instead of an error.
"""

import os
import pickle
import threading

import pytest

import repro
from repro.cli import main
from repro.core.factor import Factor
from repro.store import (
    MISS,
    STORE_SCHEMA,
    ArtifactStore,
    atpg_options_fingerprint,
    fingerprint_obj,
    fingerprint_text,
    get_store,
    store_disabled,
)

SMALL_CHIP = """
module leaf(
  input [3:0] a,
  input [1:0] sel,
  output reg [3:0] y
);
  always @(*)
    case (sel)
      2'b00: y = a;
      2'b01: y = a >> 1;
      default: y = 4'd0;
    endcase
endmodule

module chip(
  input clk,
  input [3:0] data,
  input [1:0] ctl,
  output [3:0] out
);
  reg [1:0] ctl_q;
  always @(posedge clk)
    ctl_q <= (ctl == 2'b11) ? 2'b00 : ctl;
  leaf u_leaf(.a(data), .sel(ctl_q), .y(out));
endmodule
"""


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return get_store()


class TestFingerprints:
    def test_text_fingerprint_stable_and_distinct(self):
        assert fingerprint_text("abc") == fingerprint_text("abc")
        assert fingerprint_text("abc") != fingerprint_text("abd")

    def test_canonical_obj_fingerprint_ignores_dict_order(self):
        assert (fingerprint_obj({"a": 1, "b": [2, 3]})
                == fingerprint_obj({"b": [2, 3], "a": 1}))

    def test_design_fingerprint_tracks_source_text(self):
        fp1 = Factor.from_verilog(SMALL_CHIP, top="chip").design.fingerprint
        fp2 = Factor.from_verilog(SMALL_CHIP, top="chip").design.fingerprint
        changed = SMALL_CHIP.replace("2'b11", "2'b10")
        fp3 = Factor.from_verilog(changed, top="chip").design.fingerprint
        assert fp1 == fp2
        assert fp1 != fp3

    def test_atpg_options_fingerprint_tracks_options(self):
        from repro.atpg.engine import AtpgOptions

        base = atpg_options_fingerprint(AtpgOptions(), "compiled")
        assert base == atpg_options_fingerprint(AtpgOptions(), "compiled")
        assert base != atpg_options_fingerprint(
            AtpgOptions(backtrack_limit=7), "compiled")
        assert base != atpg_options_fingerprint(AtpgOptions(), "interpreted")

    def test_key_fingerprint_separates_stages_and_keys(self, store):
        key = {"design": "d", "module": "m"}
        assert (store.key_fingerprint("extract", key)
                != store.key_fingerprint("transform", key))
        assert (store.key_fingerprint("extract", key)
                != store.key_fingerprint("extract", {**key, "module": "x"}))


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        key = {"k": 1}
        assert store.get("ast", key) is MISS
        assert store.put("ast", key, {"payload": [1, 2, None]})
        assert store.get("ast", key) == {"payload": [1, 2, None]}

    def test_none_payload_is_storable(self, store):
        store.put("ast", {"k": "none"}, None)
        assert store.get("ast", {"k": "none"}) is None

    def test_entry_layout(self, store):
        store.put("extract", {"k": 2}, "x")
        path = store.entry_path("extract", {"k": 2})
        assert os.path.exists(path)
        rel = os.path.relpath(path, store.root)
        parts = rel.split(os.sep)
        assert parts[0] == f"v{STORE_SCHEMA}"
        assert parts[1] == "extract"
        assert parts[2] == parts[3][:2]
        assert parts[3].endswith(".pkl")


class TestRobustness:
    def test_corrupt_entry_degrades_to_miss_and_unlinks(self, store):
        key = {"k": "corrupt"}
        store.put("synth", key, [1, 2, 3])
        path = store.entry_path("synth", key)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle at all")
        assert store.get("synth", key) is MISS
        assert not os.path.exists(path)

    def test_truncated_entry_degrades_to_miss(self, store):
        key = {"k": "trunc"}
        store.put("synth", key, list(range(1000)))
        path = store.entry_path("synth", key)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get("synth", key) is MISS

    def test_version_skew_degrades_to_miss(self, store):
        key = {"k": "skew"}
        store.put("synth", key, "payload")
        path = store.entry_path("synth", key)
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["repro"] = "0.0.0-other"
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        assert store.get("synth", key) is MISS

    def test_schema_skew_degrades_to_miss(self, store):
        key = {"k": "schema"}
        store.put("synth", key, "payload")
        path = store.entry_path("synth", key)
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["schema"] = STORE_SCHEMA + 1
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        assert store.get("synth", key) is MISS

    def test_unwritable_root_latches_and_never_raises(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        store = ArtifactStore(root=str(blocked / "sub"))
        assert not store.put("ast", {"k": 1}, "x")
        assert store._broken
        assert not store.put("ast", {"k": 2}, "y")
        assert store.get("ast", {"k": 1}) is MISS

    def test_unpicklable_payload_is_skipped(self, store):
        assert not store.put("ast", {"k": "gen"}, (i for i in range(3)))
        assert store.get("ast", {"k": "gen"}) is MISS

    def test_concurrent_writers_and_readers(self, store):
        key = {"k": "race"}
        payload = {"data": list(range(200))}
        errors = []

        def writer():
            try:
                for _ in range(50):
                    store.put("codegen", key, payload)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(50):
                    got = store.get("codegen", key)
                    assert got is MISS or got == payload
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.get("codegen", key) == payload


class TestEnvironmentKnobs:
    def test_no_cache_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert store_disabled()
        store = get_store()
        assert not store.enabled
        assert not store.put("ast", {"k": 1}, "x")
        assert store.get("ast", {"k": 1}) is MISS
        assert not (tmp_path / "cache").exists()

    def test_no_cache_zero_means_enabled(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert not store_disabled()
        assert get_store().enabled

    def test_pipeline_with_no_cache_writes_nothing(self, tmp_path,
                                                   monkeypatch):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        factor = Factor.from_verilog(SMALL_CHIP, top="chip")
        factor.analyze("leaf")
        assert not cache.exists()


class TestMaintenance:
    def test_stats_clear(self, store):
        store.put("ast", {"k": 1}, "a" * 100)
        store.put("extract", {"k": 2}, "b" * 100)
        stats = store.stats()
        assert stats["ast"]["entries"] == 1
        assert stats["extract"]["entries"] == 1
        assert stats["total"]["entries"] == 2
        assert stats["total"]["bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["total"]["entries"] == 0

    def test_gc_evicts_oldest_down_to_cap(self, store):
        for i in range(5):
            store.put("ast", {"k": i}, "x" * 1000)
            path = store.entry_path("ast", {"k": i})
            os.utime(path, (i, i))  # deterministic mtime order
        sizes = [size for _s, _p, size, _m in store._entries()]
        cap = sum(sizes) - 1  # forces at least one eviction
        removed, remaining = store.gc(cap)
        assert removed >= 1
        assert remaining <= cap
        # Oldest entries went first: the newest key must survive.
        assert store.get("ast", {"k": 4}) is not MISS
        assert store.get("ast", {"k": 0}) is MISS

    def test_gc_noop_when_under_cap(self, store):
        store.put("ast", {"k": 1}, "x")
        removed, remaining = store.gc(10 ** 9)
        assert removed == 0
        assert store.get("ast", {"k": 1}) == "x"


class TestCacheCli:
    def test_stats_clear_gc(self, store, capsys):
        store.put("ast", {"k": 1}, "x" * 500)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "ast" in out and "total" in out
        assert main(["cache", "gc", "--max-size", "1K"]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert store.stats()["total"]["entries"] == 0

    def test_stats_disabled(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert main(["cache", "stats"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_bad_size_rejected(self, store):
        from repro.cli import _parse_size

        assert _parse_size("512M") == 512 * 1024 ** 2
        assert _parse_size("2G") == 2 * 1024 ** 3
        assert _parse_size("100KiB") == 100 * 1024
        assert _parse_size("123") == 123
        with pytest.raises(ValueError):
            _parse_size("many bytes")


def _atpg_options():
    from repro.atpg.engine import AtpgOptions

    return AtpgOptions(max_frames=2, random_sequences=2,
                       random_sequence_length=8)


def _run_pipeline():
    factor = Factor.from_verilog(SMALL_CHIP, top="chip")
    result = factor.analyze("leaf")
    report = factor.generate_tests(result, _atpg_options())
    return result, report


_DETERMINISTIC_FIELDS = ("total_faults", "detected", "untestable", "aborted",
                         "num_tests", "num_vectors")


class TestDifferential:
    """Warm runs must be bit-identical to cold; cold must equal uncached."""

    def test_cached_equals_uncached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        _result_u, report_u = _run_pipeline()
        monkeypatch.delenv("REPRO_NO_CACHE")
        result_c, report_c = _run_pipeline()    # cold: publishes
        result_w, report_w = _run_pipeline()    # warm: loads

        for field in _DETERMINISTIC_FIELDS:
            assert getattr(report_u, field) == getattr(report_c, field)
        assert report_u.coverage_percent == report_c.coverage_percent
        assert report_u.efficiency_percent == report_c.efficiency_percent
        assert report_u.abort_reasons == report_c.abort_reasons

        # Warm is the stored cold artifact: identical including timings.
        assert report_w.as_row() == report_c.as_row()
        assert report_w.record is not None
        assert (len(result_w.transformed.netlist.gates)
                == len(result_c.transformed.netlist.gates))
        assert (result_w.extraction.tasks_run
                == result_c.extraction.tasks_run)

    def test_warm_run_hits_every_stage(self, tmp_path, monkeypatch):
        from repro.obs import get_registry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        _run_pipeline()
        registry = get_registry()
        registry.reset()
        _run_pipeline()
        snapshot = registry.snapshot()
        for stage in ("ast", "extract", "transform", "atpg"):
            assert snapshot[f"store.{stage}.hits"]["value"] >= 1, stage
            assert f"store.{stage}.misses" not in snapshot

    def test_corrupt_store_still_produces_report(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        _, report_cold = _run_pipeline()
        # Vandalize every entry in the store.
        for dirpath, _dirs, files in os.walk(str(tmp_path / "cache")):
            for name in files:
                with open(os.path.join(dirpath, name), "wb") as handle:
                    handle.write(b"\x80garbage")
        _, report_again = _run_pipeline()
        for field in _DETERMINISTIC_FIELDS:
            assert (getattr(report_again, field)
                    == getattr(report_cold, field))


class TestVersionInKeys:
    def test_version_bump_changes_addresses(self, store, monkeypatch):
        fp_now = store.key_fingerprint("ast", {"k": 1})
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert store.key_fingerprint("ast", {"k": 1}) != fp_now
