"""Writer tests: emitted Verilog re-parses to an identical rendering.

The round-trip property (write -> parse -> write is a fixpoint) is what the
constraint-emission flow relies on: FACTOR writes pruned modules out as
Verilog and the synthesis step reads them back.
"""

import pytest

from repro.designs import small_designs, arm2_source
from repro.verilog.parser import parse_source
from repro.verilog.writer import write_expr, write_module, write_source


def roundtrip(src):
    first = write_source(parse_source(src))
    second = write_source(parse_source(first))
    assert first == second
    return first


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(small_designs()))
    def test_small_designs(self, name):
        roundtrip(small_designs()[name])

    def test_arm2(self):
        roundtrip(arm2_source())

    def test_expressions(self):
        roundtrip("""
        module m(input [7:0] a, input [7:0] b, input c, output [7:0] y);
          wire [7:0] t;
          assign t = c ? (a + b) * 8'd3 : {b[3:0], a[7:4]};
          assign y = (t << 2) | {8{c}} & ~(a ^ b);
        endmodule
        """)

    def test_precedence_preserved(self):
        src = """
        module m(input a, input b, input c, output y, output z);
          assign y = a & (b | c);
          assign z = a & b | c;
        endmodule
        """
        out = roundtrip(src)
        mod = parse_source(out).module("m")
        # y must keep the parenthesised OR inside the AND.
        y = mod.assigns[0].rhs
        assert y.op == "&"
        assert y.right.op == "|"
        z = mod.assigns[1].rhs
        assert z.op == "|"

    def test_case_statements(self):
        roundtrip("""
        module m(input [1:0] s, input a, output reg y);
          always @(*)
            casez (s)
              2'b0?: y = a;
              2'b10: y = ~a;
              default: y = 1'b0;
            endcase
        endmodule
        """)

    def test_sequential_with_async_style_sensitivity(self):
        roundtrip("""
        module m(input clk, input rst_n, input d, output reg q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n)
              q <= 1'b0;
            else
              q <= d;
        endmodule
        """)

    def test_for_loop(self):
        roundtrip("""
        module m(input [3:0] a, output reg [3:0] y);
          integer i;
          always @(*) begin
            y = 4'd0;
            for (i = 0; i < 4; i = i + 1)
              y[i] = a[3 - i];
          end
        endmodule
        """)

    def test_gates_and_instances(self):
        roundtrip("""
        module leaf(input i, output o);
          assign o = ~i;
        endmodule
        module m(input a, input b, output y);
          wire w1;
          wire w2;
          and g1(w1, a, b);
          leaf u1(.i(w1), .o(w2));
          assign y = w2;
        endmodule
        """)

    def test_parameters(self):
        roundtrip("""
        module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);
          localparam HALF = W / 2;
          assign y = a + HALF;
        endmodule
        """)


class TestWriteExpr:
    def test_number_bases(self):
        from repro.verilog import ast

        assert write_expr(ast.Number(value=5, width=4, base="b")) == "4'b0101"
        assert write_expr(ast.Number(value=255, width=8, base="h")) == "8'hff"
        assert write_expr(ast.Number(value=9, width=8, base="d")) == "8'd9"
        assert write_expr(ast.Number(value=9)) == "9"

    def test_wildcard_label(self):
        from repro.verilog import ast

        assert write_expr(ast.CaseLabelWild(bits="1?0")) == "3'b1?0"

    def test_minimal_parens(self):
        mod = parse_source(
            "module m(input a, input b, input c, output y);"
            "assign y = a + b * c; endmodule"
        ).module("m")
        assert write_expr(mod.assigns[0].rhs) == "a + b * c"


class TestWriteModule:
    def test_empty_sensitivity_written_as_star(self):
        src = """
        module m(input a, output reg y);
          always @(*) y = a;
        endmodule
        """
        out = write_module(parse_source(src).module("m"))
        assert "always @(*)" in out

    def test_unconnected_port_written(self):
        src = """
        module leaf(input i, output o);
          assign o = i;
        endmodule
        module m(input a, output y);
          leaf u1(.i(a), .o());
          assign y = a;
        endmodule
        """
        out = write_source(parse_source(src))
        assert ".o()" in out
