"""CLI surfaces of the observability stack: ``repro trace``, ``submit
--watch`` and ``jobs --follow``, driven in-process against a
ServerThread like test_cli_serve.py."""

import json
import os

import pytest

from repro.cli import main
from repro.serve import ServeConfig, ServerThread

TINY = """
module leaf(input a, input b, output y);
  assign y = a & b;
endmodule
module topm(input a, input b, input c, output y);
  wire t;
  leaf u0(.a(a), .b(b), .y(t));
  assign y = t | c;
endmodule
"""


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "tiny.v"
    path.write_text(TINY)
    return str(path)


@pytest.fixture()
def server(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    thread = ServerThread(ServeConfig(port=0, worker_mode="thread",
                                      jobs=1, progress_interval=0.0))
    address = thread.start()
    monkeypatch.setenv("REPRO_SERVER", address)
    yield address
    thread.stop()


def _submitted_job_id(capsys, server):
    listing = json.loads(_stdout(capsys, ["jobs", "--json"]))
    return listing["jobs"][0]["id"]


def _stdout(capsys, argv):
    capsys.readouterr()
    assert main(argv) == 0
    return capsys.readouterr().out


class TestSubmitWatch:
    def test_watch_streams_and_prints_outcome(self, design_file, server,
                                              capsys):
        rc = main(["submit", design_file, "--op", "atpg", "--top", "topm",
                   "--mut", "leaf", "--frames", "1", "--watch"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "ATPG report for leaf" in captured.out
        # The live progress line renders on stderr; the terminal event too.
        assert "done" in captured.err


class TestJobsFollow:
    def test_follow_replays_ndjson_until_done(self, design_file, server,
                                              capsys):
        assert main(["submit", design_file, "--op", "atpg", "--top",
                     "topm", "--mut", "leaf", "--frames", "1"]) == 0
        job_id = _submitted_job_id(capsys, server)
        out = _stdout(capsys, ["jobs", "--follow", job_id])
        events = [json.loads(line) for line in out.splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"
        assert "progress" in kinds

    def test_follow_since_skips_early_events(self, design_file, server,
                                             capsys):
        assert main(["submit", design_file, "--op", "atpg", "--top",
                     "topm", "--mut", "leaf", "--frames", "1"]) == 0
        job_id = _submitted_job_id(capsys, server)
        out = _stdout(capsys, ["jobs", "--follow", job_id,
                               "--since", "2"])
        events = [json.loads(line) for line in out.splitlines()]
        assert all(e["seq"] > 2 for e in events)

    def test_follow_unknown_job_errors(self, server, capsys):
        assert main(["jobs", "--follow", "job-999-nope"]) == 1
        assert "error" in capsys.readouterr().err


class TestTraceShow:
    def _trace_dir(self, tmp_path):
        return str(tmp_path / "store" / "traces")

    def test_show_by_job_id_renders_waterfall(self, design_file, server,
                                              tmp_path, capsys):
        assert main(["submit", design_file, "--op", "atpg", "--top",
                     "topm", "--mut", "leaf", "--frames", "1"]) == 0
        job_id = _submitted_job_id(capsys, server)
        out = _stdout(capsys, ["trace", "show", job_id,
                               "--trace-dir", self._trace_dir(tmp_path)])
        assert "Waterfall" in out
        assert "serve.submit" in out
        assert "serve.execute" in out
        assert "Top spans by wall time" in out

    def test_show_by_file_path_and_json(self, design_file, server,
                                        tmp_path, capsys):
        assert main(["submit", design_file, "--op", "atpg", "--top",
                     "topm", "--mut", "leaf", "--frames", "1"]) == 0
        job_id = _submitted_job_id(capsys, server)
        path = os.path.join(self._trace_dir(tmp_path), f"{job_id}.jsonl")
        out = _stdout(capsys, ["trace", "show", path, "--json"])
        spans = json.loads(out)
        assert len({s["trace_id"] for s in spans}) == 1

    def test_show_missing_trace_errors(self, tmp_path, capsys):
        rc = main(["trace", "show", "job-1-nope",
                   "--trace-dir", str(tmp_path / "empty")])
        assert rc == 1
        assert "no trace file" in capsys.readouterr().err


class TestTraceSlow:
    def test_no_entries(self, tmp_path, capsys):
        out = _stdout(capsys, ["trace", "slow",
                               "--trace-dir", str(tmp_path / "traces")])
        assert "no slow jobs" in out

    def test_entries_rendered_with_hottest_phase(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        entries = [
            {"id": f"job-{i}", "op": "atpg", "t": 1000.0 + i,
             "wall_s": 20.0 + i, "threshold_s": 15.0,
             "trace": f"/traces/job-{i}.jsonl",
             "phases": {"atpg": 18.0, "parse": 1.0}}
            for i in range(3)
        ]
        with open(trace_dir / "slow_jobs.jsonl", "w") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")
            handle.write('{"torn')  # crashed-writer tail must not break it
        out = _stdout(capsys, ["trace", "slow",
                               "--trace-dir", str(trace_dir),
                               "--limit", "2"])
        assert "job-1" in out and "job-2" in out
        assert "job-0" not in out  # limited to the most recent 2
        assert "atpg" in out

    def test_slow_json_output(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        with open(trace_dir / "slow_jobs.jsonl", "w") as handle:
            handle.write(json.dumps({"id": "job-1", "op": "atpg",
                                     "wall_s": 9.0, "threshold_s": 5.0,
                                     "trace": None, "phases": {}}) + "\n")
        out = _stdout(capsys, ["trace", "slow", "--json",
                               "--trace-dir", str(trace_dir)])
        assert json.loads(out)[0]["id"] == "job-1"
