"""Span tracing: nesting, timing monotonicity, exports, timers."""

import json

import pytest

from repro.obs.trace import (
    CpuTimer,
    Deadline,
    Span,
    Tracer,
    cpu_clock,
    to_chrome_trace,
    to_jsonl,
    wall_clock,
)


def _burn(n=20000):
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestSpanNesting:
    def test_child_attaches_to_parent_not_roots(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.children == []

    def test_siblings_in_order(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["a", "b"]

    def test_deep_nesting_walk_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.roots
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("x") as x:
            assert tracer.current() is x
            with tracer.span("y") as y:
                assert tracer.current() is y
            assert tracer.current() is x
        assert tracer.current() is None

    def test_span_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.finished

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestSpanTiming:
    def test_timing_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                _burn()
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert outer.cpu_seconds >= inner.cpu_seconds >= 0.0
        assert outer.end_wall >= outer.start_wall
        assert outer.end_cpu >= outer.start_cpu

    def test_children_sum_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            for _ in range(3):
                with tracer.span("child"):
                    _burn(5000)
        (outer,) = tracer.roots
        child_sum = sum(c.wall_seconds for c in outer.children)
        assert child_sum <= outer.wall_seconds + 1e-6

    def test_open_span_reports_live_duration(self):
        span = Span("live")
        first = span.wall_seconds
        _burn(2000)
        assert span.wall_seconds >= first
        span.finish()
        frozen = span.wall_seconds
        _burn(2000)
        assert span.wall_seconds == frozen

    def test_finish_idempotent(self):
        span = Span("x").finish()
        end = span.end_wall
        span.finish()
        assert span.end_wall == end


class TestSpanAttrs:
    def test_set_and_add(self):
        span = Span("x", {"a": 1})
        span.set("b", "two")
        span.add("count")
        span.add("count", 4)
        assert span.attrs == {"a": 1, "b": "two", "count": 5}


class TestExports:
    def _forest(self):
        tracer = Tracer()
        with tracer.span("root", kind="test"):
            with tracer.span("leaf", n=3):
                pass
        return tracer

    def test_to_dict_round_trips_json(self):
        tracer = self._forest()
        text = json.dumps(tracer.to_dict())
        data = json.loads(text)
        assert data["version"] == 2
        (root,) = data["spans"]
        assert root["name"] == "root"
        assert root["attrs"] == {"kind": "test"}
        (leaf,) = root["children"]
        assert leaf["name"] == "leaf"
        assert leaf["wall_s"] >= 0

    def test_jsonl_one_line_per_span_with_paths(self):
        tracer = self._forest()
        lines = to_jsonl(list(tracer.roots)).splitlines()
        rows = [json.loads(line) for line in lines]
        assert [r["path"] for r in rows] == ["root", "root/leaf"]
        assert rows[1]["parent"] == rows[0]["id"]

    def test_chrome_trace_shape(self):
        tracer = self._forest()
        data = to_chrome_trace(list(tracer.roots))
        events = data["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert set(event) >= {"name", "ts", "pid", "tid", "args"}

    def test_write_json_variants(self, tmp_path):
        tracer = self._forest()
        nested = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.chrome.json"
        for path in (nested, jsonl, chrome):
            tracer.write_json(str(path))
        assert json.load(open(nested))["spans"][0]["name"] == "root"
        assert len(jsonl.read_text().strip().splitlines()) == 2
        assert "traceEvents" in json.load(open(chrome))

    def test_find_by_name(self):
        tracer = self._forest()
        assert [s.name for s in tracer.find("leaf")] == ["leaf"]
        assert tracer.find("missing") == []


class TestTimers:
    def test_cpu_timer_accumulates(self):
        timer = CpuTimer()
        with timer:
            _burn()
        first = timer.elapsed
        assert first >= 0.0
        with timer:
            _burn()
        assert timer.elapsed >= first

    def test_cpu_timer_stop_without_start(self):
        timer = CpuTimer()
        assert timer.stop() == 0.0

    def test_deadline_none_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()

    def test_deadline_zero_expires(self):
        deadline = Deadline(0.0)
        _burn()
        assert deadline.expired()
        assert deadline.elapsed > 0.0

    def test_clocks_advance(self):
        w0, c0 = wall_clock(), cpu_clock()
        _burn()
        assert wall_clock() > w0
        assert cpu_clock() >= c0
