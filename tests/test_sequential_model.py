"""Tests for the time-frame-expansion model."""

import pytest

from repro.atpg.sequential import UnrolledModel
from repro.atpg.values import V0, V1, VX
from repro.designs import counter_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


class TestStructure:
    def test_assignable_inputs_cover_all_frames(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 3)
        assert len(model.assignable) == 3 * len(nl.pis)
        for frame in range(3):
            for pi in nl.pis:
                assert model.is_assignable((frame, pi))

    def test_observable_covers_all_frames(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 3)
        assert len(model.observable) == 3 * len(nl.pos)

    def test_needs_at_least_one_frame(self):
        nl = netlist_of(counter_source())
        with pytest.raises(ValueError):
            UnrolledModel(nl, 0)

    def test_excluded_pis_not_assignable(self):
        nl = netlist_of(counter_source())
        clk = next(pi for pi in nl.pis if nl.net_name(pi) == "clk")
        model = UnrolledModel(nl, 2, exclude_pis={clk})
        assert (0, clk) not in model.assignable

    def test_driver_of_cross_frame_edge(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 2)
        dff = nl.dffs()[0]
        drv = model.driver_of((1, dff.output))
        assert drv is not None
        kind, gate, inputs = drv
        assert kind == "dff"
        assert inputs == [(0, dff.inputs[0])]
        # Frame 0 Q has no driver: it is an X source.
        assert model.driver_of((0, dff.output)) is None

    def test_fanout_crosses_frames(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 2)
        dff = nl.dffs()[0]
        d_key = (0, dff.inputs[0])
        assert (1, dff.output) in model.fanout_keys(d_key)
        # Last frame: no next-frame edge.
        d_last = (1, dff.inputs[0])
        assert all(key[0] == 1 for key in model.fanout_keys(d_last))

    def test_levels_monotone_across_frames(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 3)
        pi = nl.pis[0]
        assert model.level((0, pi)) < model.level((1, pi)) \
            < model.level((2, pi))

    def test_controllability_of_constant_cone(self):
        nl = Netlist()
        a = nl.add_pi("a")
        const_gate = nl.add_gate(GateType.AND, (CONST1, CONST0))
        y = nl.add_gate(GateType.OR, (a, const_gate))
        nl.add_po(y, "y")
        model = UnrolledModel(nl, 1)
        assert model.is_controllable((0, y))
        assert not model.is_controllable((0, const_gate))


class TestBaseValues:
    def test_matches_fresh_evaluation(self):
        from repro.atpg.podem import eval_gate_values

        nl = netlist_of(fsm_source())
        model = UnrolledModel(nl, 3)
        base = model.base_values()
        # Recompute independently.
        fresh = {}
        for frame in range(3):
            fresh[(frame, CONST0)] = V0
            fresh[(frame, CONST1)] = V1
            for gate in model.order:
                fresh[(frame, gate.output)] = eval_gate_values(
                    gate.type, [(frame, i) for i in gate.inputs], fresh
                )
            if frame + 1 < 3:
                for dff in model.dffs:
                    fresh[(frame + 1, dff.output)] = fresh.get(
                        (frame, dff.inputs[0]), VX
                    )
        assert base == fresh

    def test_cached(self):
        nl = netlist_of(fsm_source())
        model = UnrolledModel(nl, 2)
        assert model.base_values() is model.base_values()

    def test_unassigned_inputs_give_x_outputs(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 2)
        base = model.base_values()
        # With no PI assigned, POs derived from state are X.
        for po in nl.pos:
            assert base.get((1, po), VX) == VX

    def test_constant_cones_are_binary(self):
        nl = Netlist()
        a = nl.add_pi("a")
        tied = nl.add_gate(GateType.OR, (CONST1, a))
        nl.add_po(tied, "y")
        model = UnrolledModel(nl, 2)
        base = model.base_values()
        assert base[(0, tied)] == V1
        assert base[(1, tied)] == V1
