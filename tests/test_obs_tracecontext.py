"""Distributed trace identity: W3C traceparent, IDs across forks,
ambient context, and stitched-trace flattening/replay."""

import concurrent.futures
import json

import pytest

from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    epoch_seconds,
    flatten_span_dict,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    read_trace_jsonl,
    wall_clock,
)

VALID = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


class TestIds:
    def test_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 32
        assert int(tid, 16) != 0
        assert tid == tid.lower()

    def test_span_id_shape(self):
        sid = new_span_id()
        assert len(sid) == 16
        assert int(sid, 16) != 0

    def test_ids_unique_in_process(self):
        ids = {new_span_id() for _ in range(1000)}
        assert len(ids) == 1000


def _span_ids_in_child(n):
    return [new_span_id() for _ in range(n)]


class TestForkDisjointness:
    def test_forked_workers_never_share_span_ids(self):
        """Two pool processes must draw from independent entropy.

        A ``random``-module generator would fork with identical state and
        both children would emit the same ID sequence; ``os.urandom``
        cannot.  Regression for the span-ID collision bug.
        """
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_span_ids_in_child, 200)
                       for _ in range(2)]
            first, second = [f.result(timeout=60) for f in futures]
        assert len(set(first)) == 200
        assert len(set(second)) == 200
        assert not set(first) & set(second)


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext.new()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_valid_header(self):
        ctx = parse_traceparent(VALID)
        assert ctx.trace_id == "0af7651916cd43dd8448eb211c80319c"
        assert ctx.span_id == "b7ad6b7169203331"
        assert ctx.sampled is True

    def test_unsampled_flags(self):
        ctx = parse_traceparent(VALID[:-2] + "00")
        assert ctx is not None and ctx.sampled is False

    def test_uppercase_normalized(self):
        assert parse_traceparent(VALID.upper()) is not None

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                              # short ids
        VALID.replace("00-", "ff-"),                  # forbidden version
        VALID.replace("00-", "0-"),                   # short version
        VALID.replace("00-", "zz-"),                  # non-hex version
        "00-" + "z" * 32 + "-b7ad6b7169203331-01",    # non-hex trace id
        "00-" + "0" * 32 + "-b7ad6b7169203331-01",    # all-zero trace id
        VALID.replace("b7ad6b7169203331", "0" * 16),  # all-zero span id
        VALID + "-extra",                             # v00 extra field
        VALID[:-1],                                   # short flags
    ])
    def test_invalid_headers_absent(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_lenient(self):
        assert parse_traceparent(VALID.replace("00-", "42-")
                                 + "-future-data") is not None


class TestSpanContext:
    def test_span_without_context_roots_new_trace(self):
        span = Span("root")
        assert span.parent_id is None
        assert len(span.trace_id) == 32

    def test_span_with_context_inherits(self):
        ctx = TraceContext.new()
        span = Span("child", context=ctx)
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id
        assert span.span_id != ctx.span_id

    def test_tracer_use_context_parents_roots(self):
        tracer = Tracer()
        ctx = TraceContext.new()
        with tracer.use_context(ctx):
            with tracer.span("served") as served:
                with tracer.span("inner") as inner:
                    pass
        assert served.trace_id == ctx.trace_id
        assert served.parent_id == ctx.span_id
        assert inner.trace_id == ctx.trace_id
        assert inner.parent_id == served.span_id

    def test_tracer_without_context_is_local_root(self):
        tracer = Tracer()
        with tracer.span("local") as span:
            pass
        assert span.parent_id is None

    def test_current_context_points_at_open_span(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("x") as x:
            ctx = tracer.current_context()
            assert ctx.trace_id == x.trace_id
            assert ctx.span_id == x.span_id


class TestEpochAnchor:
    def test_epoch_seconds_close_to_time_time(self):
        import time

        now = epoch_seconds(wall_clock())
        assert abs(now - time.time()) < 1.0


class TestStitching:
    def _tree(self):
        ctx = TraceContext.new()
        root = Span("serve.execute", context=ctx)
        child = Span("atpg", context=root.context)
        child.finish()
        root.children.append(child)
        root.finish()
        return ctx, root

    def test_flatten_links_and_process_label(self):
        ctx, root = self._tree()
        lines = flatten_span_dict(root.to_dict(), "worker")
        assert [l["name"] for l in lines] == ["serve.execute", "atpg"]
        assert all(l["process"] == "worker" for l in lines)
        assert all(l["trace_id"] == ctx.trace_id for l in lines)
        assert lines[0]["parent"] == ctx.span_id  # remote parent kept
        assert lines[1]["parent"] == root.span_id

    def test_read_trace_jsonl_tolerates_torn_tail(self, tmp_path):
        _, root = self._tree()
        lines = flatten_span_dict(root.to_dict(), "worker")
        path = tmp_path / "trace.jsonl"
        text = "".join(json.dumps(l) + "\n" for l in lines)
        path.write_text(text + '{"trace_id": "abc", "trunc')
        spans = read_trace_jsonl(str(path))
        assert len(spans) == 2
        assert [s["name"] for s in spans] == ["serve.execute", "atpg"]

    def test_read_trace_jsonl_missing_file(self, tmp_path):
        assert read_trace_jsonl(str(tmp_path / "absent.jsonl")) == []
