"""Lint baseline for the bundled designs and the shipped demo.

The committed baseline: arm2 and filterchip lint clean of errors *and*
warnings; the only findings are W103 info notes, which restate the paper's
Section-4.2 hard-coded-constraint observations (the testability report
surfaces the same cones).  Any new error or warning in these designs is a
regression.
"""

import json
import os

import pytest

from repro.cli import main
from repro.designs import arm2_design, filterchip_design
from repro.lint import run_lint

DEMO = os.path.join(os.path.dirname(__file__), os.pardir,
                    "examples", "lint_demo.v")


class TestBundledDesignBaseline:
    @pytest.mark.parametrize("design_fn", [arm2_design, filterchip_design],
                             ids=["arm2", "filterchip"])
    def test_no_errors_or_warnings(self, design_fn):
        result = run_lint(design_fn())
        assert result.errors == []
        assert result.warnings == []
        # Everything left is the paper's hard-coded-cone observation.
        assert {d.rule_id for d in result.diagnostics} <= {"W103"}

    def test_arm2_reports_hard_coded_cones(self):
        result = run_lint(arm2_design())
        assert result.by_rule().get("W103", 0) > 0


class TestLintDemo:
    """ISSUE acceptance: >=10 distinct rule ids across all three formats."""

    def run_format(self, fmt, capsys):
        rc = main(["lint", DEMO, "--top", "lint_demo", "--format", fmt])
        assert rc == 2  # the demo contains seeded errors
        return capsys.readouterr().out

    def test_text_reports_ten_distinct_rules(self, capsys):
        out = self.run_format("text", capsys)
        ids = {tok for line in out.splitlines() for tok in line.split()
               if len(tok) == 4 and tok[0] == "W" and tok[1:].isdigit()}
        assert len(ids) >= 10, sorted(ids)

    def test_json_reports_ten_distinct_rules(self, capsys):
        payload = json.loads(self.run_format("json", capsys))
        assert len(payload["by_rule"]) >= 10, payload["by_rule"]

    def test_sarif_reports_ten_distinct_rules(self, capsys):
        log = json.loads(self.run_format("sarif", capsys))
        ids = {r["ruleId"] for r in log["runs"][0]["results"]}
        assert len(ids) >= 10, sorted(ids)

    def test_same_rules_in_every_format(self, capsys):
        text = self.run_format("text", capsys)
        payload = json.loads(self.run_format("json", capsys))
        log = json.loads(self.run_format("sarif", capsys))
        json_ids = set(payload["by_rule"])
        sarif_ids = {r["ruleId"] for r in log["runs"][0]["results"]}
        text_ids = {tok for line in text.splitlines()
                    for tok in line.split()
                    if len(tok) == 4 and tok[0] == "W" and tok[1:].isdigit()}
        assert json_ids == sarif_ids == text_ids
