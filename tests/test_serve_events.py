"""Event streaming and trace stitching on the job server.

Covers the ``GET /v1/jobs/<id>/events`` NDJSON long-poll endpoint (replay,
live follow, cursor, framing under keep-alive), the stitched per-job
trace files, the traceparent round trip, and the serve-tier gauges.
Thread-mode servers throughout, as in test_serve_server.py.
"""

import json
import os
import socket
import threading

import pytest

import repro.serve.server as server_mod
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread

TINY = """
module leaf(input a, input b, output y);
  assign y = a & b;
endmodule
module topm(input a, input b, input c, output y);
  wire t;
  leaf u0(.a(a), .b(b), .y(t));
  assign y = t | c;
endmodule
"""

TRACEPARENT = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


@pytest.fixture()
def fresh_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path


def start_server(tmp_path, **overrides):
    overrides.setdefault("trace_dir", str(tmp_path / "traces"))
    config = ServeConfig(port=0, worker_mode="thread", jobs=1,
                         drain_timeout=60.0, progress_interval=0.0,
                         **overrides)
    thread = ServerThread(config)
    client = ServeClient(thread.start(), timeout=30.0)
    return thread, client


def atpg_spec(**overrides):
    spec = {"op": "atpg", "source": TINY, "top": "topm", "mut": "leaf",
            "frames": 1}
    spec.update(overrides)
    return spec


class TestEventStream:
    def test_replay_after_completion(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            client.wait(job["id"], timeout=60)
            events = list(client.events(job["id"]))
        finally:
            thread.stop()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted"
        assert "started" in kinds
        assert kinds[-1] == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert len(progress) >= 3
        phases = [e["phase"] for e in progress]
        assert phases[0] == "atpg.setup"
        assert "atpg.done" in phases
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_live_follow_sees_events_before_completion(self, fresh_store,
                                                       monkeypatch):
        release = threading.Event()
        real = server_mod.execute_job

        def gated(spec_dict, **kwargs):
            release.wait(timeout=30)
            return real(spec_dict, **kwargs)

        monkeypatch.setattr(server_mod, "execute_job", gated)
        thread, client = start_server(fresh_store)
        collected = []
        seen_submitted = threading.Event()

        def follow(job_id):
            for event in client.events(job_id, timeout=30.0):
                if event["event"] == "keepalive":
                    continue
                collected.append(event)
                if event["event"] == "submitted":
                    seen_submitted.set()
                if event["event"] in ("done", "failed"):
                    return

        try:
            job = client.submit(atpg_spec())["job"]
            follower = threading.Thread(target=follow, args=(job["id"],))
            follower.start()
            # The stream delivers the submitted event while the worker is
            # still gated: streaming, not post-hoc replay.
            assert seen_submitted.wait(timeout=10)
            assert not any(e["event"] == "done" for e in collected)
            release.set()
            follower.join(timeout=30)
            assert not follower.is_alive()
        finally:
            release.set()
            thread.stop()
        assert collected[-1]["event"] == "done"
        assert any(e["event"] == "progress" for e in collected)

    def test_since_cursor_skips_replayed_events(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            client.wait(job["id"], timeout=60)
            all_events = list(client.events(job["id"]))
            cursor = all_events[1]["seq"]
            tail = list(client.events(job["id"], since=cursor))
        finally:
            thread.stop()
        assert [e["seq"] for e in tail] == \
            [e["seq"] for e in all_events if e["seq"] > cursor]

    def test_unknown_job_404(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            with pytest.raises(ServeError) as exc:
                list(client.events("job-999-nope"))
            assert exc.value.status == 404
        finally:
            thread.stop()

    def test_bad_since_400(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            client.wait(job["id"], timeout=60)
            status, _, _ = client.request(
                "GET", f"/v1/jobs/{job['id']}/events?since=banana")
            assert status == 400
        finally:
            thread.stop()

    def test_progress_block_in_job_view(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            done = client.wait(job["id"], timeout=60)
        finally:
            thread.stop()
        assert done["progress"]["phase"] == "atpg.done"
        assert done["trace_path"]


class TestNdjsonFraming:
    def _raw(self, client, request: bytes) -> bytes:
        with socket.create_connection((client.host, client.port),
                                      timeout=30) as sock:
            sock.sendall(request)
            chunks = []
            sock.settimeout(30)
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
                blob = b"".join(chunks)
                # Second response (healthz) is Content-Length framed; stop
                # once its JSON body has arrived.
                if blob.count(b"HTTP/1.1") >= 2 and blob.endswith(b"}"):
                    break
        return b"".join(chunks)

    def test_chunked_stream_keeps_connection_reusable(self, fresh_store):
        """A drained /events stream must terminate its chunked body so a
        pipelined request on the same connection still gets served."""
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            client.wait(job["id"], timeout=60)
            raw = self._raw(
                client,
                f"GET /v1/jobs/{job['id']}/events HTTP/1.1\r\n"
                f"Host: x\r\n\r\n"
                f"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                f"Connection: close\r\n\r\n".encode())
        finally:
            thread.stop()
        split = raw.find(b"HTTP/1.1", len(b"HTTP/1.1"))
        assert split != -1, raw[:200]
        first, second = raw[:split], raw[split:]
        assert b"Transfer-Encoding: chunked" in first
        assert b"application/x-ndjson" in first
        # Chunked terminator present before the second response starts.
        assert b"0\r\n\r\n" in first
        assert second.startswith(b"HTTP/1.1 200")
        assert b"\"status\"" in second

    def test_chunk_sizes_match_line_lengths(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            client.wait(job["id"], timeout=60)
            with socket.create_connection((client.host, client.port),
                                          timeout=30) as sock:
                sock.sendall(f"GET /v1/jobs/{job['id']}/events HTTP/1.1\r\n"
                             f"Host: x\r\nConnection: close\r\n\r\n"
                             .encode())
                blob = b""
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    blob += data
        finally:
            thread.stop()
        _, _, body = blob.partition(b"\r\n\r\n")
        # Walk the chunked framing by hand; every chunk is one NDJSON line.
        events = []
        while body:
            size_hex, _, rest = body.partition(b"\r\n")
            size = int(size_hex, 16)
            if size == 0:
                break
            chunk, rest = rest[:size], rest[size:]
            assert rest[:2] == b"\r\n"
            body = rest[2:]
            assert chunk.endswith(b"\n")
            events.append(json.loads(chunk.decode()))
        assert events and events[-1]["event"] == "done"


class TestTraceStitching:
    def test_one_stitched_file_single_trace_id(self, fresh_store):
        thread, client = start_server(fresh_store)
        trace_dir = str(fresh_store / "traces")
        try:
            response = client.submit(atpg_spec(),
                                     traceparent=TRACEPARENT)
            job = client.wait(response["job"]["id"], timeout=60)
        finally:
            thread.stop()
        files = [f for f in os.listdir(trace_dir)
                 if f.endswith(".jsonl") and f.startswith("job-")]
        assert files == [f"{job['id']}.jsonl"]
        spans = [json.loads(line) for line in
                 open(os.path.join(trace_dir, files[0]))]
        trace_ids = {s["trace_id"] for s in spans}
        assert trace_ids == {"0af7651916cd43dd8448eb211c80319c"}
        by_name = {s["name"]: s for s in spans}
        submit = by_name["serve.submit"]
        execute = by_name["serve.execute"]
        assert submit["process"] == "server"
        assert submit["parent"] == "b7ad6b7169203331"  # the client span
        assert execute["process"] == "worker"
        assert execute["parent"] == submit["id"]
        # The worker's pipeline phases all live under its root.
        ids = {s["id"] for s in spans}
        assert all(s["parent"] in ids for s in spans
                   if s["name"] not in ("serve.submit",))

    def test_no_client_context_still_one_trace(self, fresh_store):
        thread, client = start_server(fresh_store)
        trace_dir = str(fresh_store / "traces")
        try:
            job = client.submit(atpg_spec())["job"]
            job = client.wait(job["id"], timeout=60)
        finally:
            thread.stop()
        spans = [json.loads(line) for line in
                 open(os.path.join(trace_dir, f"{job['id']}.jsonl"))]
        assert len({s["trace_id"] for s in spans}) == 1
        submit = next(s for s in spans if s["name"] == "serve.submit")
        assert submit["parent"] is None

    def test_submit_response_carries_traceparent(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            status, headers, body = client.request(
                "POST", "/v1/jobs", atpg_spec(),
                headers={"traceparent": TRACEPARENT})
            assert status in (200, 202)
            echoed = headers.get("traceparent", "")
            assert echoed.split("-")[1] == \
                "0af7651916cd43dd8448eb211c80319c"
            assert body["job"]["trace_id"] == \
                "0af7651916cd43dd8448eb211c80319c"
            client.wait(body["job"]["id"], timeout=60)
        finally:
            thread.stop()

    def test_malformed_traceparent_ignored(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            status, _, body = client.request(
                "POST", "/v1/jobs", atpg_spec(),
                headers={"traceparent": "ff-garbage"})
            assert status in (200, 202)
            job = client.wait(body["job"]["id"], timeout=60)
            assert job["status"] == "done"
        finally:
            thread.stop()


class TestArm2EndToEnd:
    def test_served_arm2_atpg_streams_progress_and_stitches_trace(
            self, fresh_store):
        """The ISSUE's acceptance scenario on the paper's arm2 design:
        one served ATPG job yields exactly one stitched trace file whose
        worker spans parent under the submit span (single trace ID), and
        /events streams >=3 monotonic progress events before the
        terminal event."""
        thread, client = start_server(fresh_store)
        trace_dir = str(fresh_store / "traces")
        try:
            spec = {"op": "atpg", "design": "arm2", "top": "arm",
                    "mut": "arm_alu", "frames": 1, "backtrack_limit": 10,
                    "seed": 2002}
            job = client.submit(spec, traceparent=TRACEPARENT)["job"]
            events = []
            for event in client.events(job["id"], timeout=120.0):
                if event["event"] == "keepalive":
                    continue
                events.append(event)
                if event["event"] in ("done", "failed"):
                    break
        finally:
            thread.stop()
        assert events[-1]["event"] == "done"
        progress = [e for e in events[:-1] if e["event"] == "progress"]
        assert len(progress) >= 3
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        files = [f for f in os.listdir(trace_dir)
                 if f.startswith("job-") and f.endswith(".jsonl")]
        assert files == [f"{job['id']}.jsonl"]
        spans = [json.loads(line) for line in
                 open(os.path.join(trace_dir, files[0]))]
        assert len({s["trace_id"] for s in spans}) == 1
        by_name = {s["name"]: s for s in spans}
        assert by_name["serve.execute"]["parent"] == \
            by_name["serve.submit"]["id"]
        worker_spans = [s for s in spans if s["process"] == "worker"]
        assert len(worker_spans) >= 3  # execute + pipeline phases


#: Wide equality comparator: random vectors rarely hit a == b, so a few
#: faults always survive to the deterministic PODEM phase and the event
#: stream carries coverage values from both phases.
EQCMP = """
module eqcmp(input [7:0] a, input [7:0] b, output y);
  assign y = (a == b);
endmodule
module eqtop(input [7:0] a, input [7:0] b, output y);
  eqcmp u0(.a(a), .b(b), .y(y));
endmodule
"""


class TestParallelJobStreaming:
    def _force_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_FAULTS", "1")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_CORES", "1")

    def test_parallel_job_streams_increasing_coverage(self, fresh_store,
                                                      monkeypatch):
        """A --jobs submission must stream live coverage like a serial
        one: at least three progress events carrying a monotonically
        non-decreasing ``coverage`` percentage."""
        self._force_parallel(monkeypatch)
        thread, client = start_server(fresh_store)
        try:
            job = client.submit({"op": "atpg", "source": EQCMP,
                                 "top": "eqtop", "mut": "eqcmp", "frames": 1,
                                 "jobs": 2})["job"]
            done = client.wait(job["id"], timeout=120)
            events = list(client.events(job["id"]))
        finally:
            thread.stop()
        assert done["status"] == "done"
        coverage = [e["coverage"] for e in events
                    if e.get("event") == "progress" and "coverage" in e]
        assert len(coverage) >= 3
        assert coverage == sorted(coverage)
        assert coverage[-1] == round(done["result"]["coverage_percent"], 2)

    def test_jobs_field_excluded_from_fingerprint(self, fresh_store,
                                                  monkeypatch):
        """Parallel results are bit-identical to serial, so a jobs=2
        submission warm-starts a later serial submission from the store
        (and vice versa)."""
        self._force_parallel(monkeypatch)
        thread, client = start_server(fresh_store)
        try:
            spec = {"op": "atpg", "source": EQCMP, "top": "eqtop",
                    "mut": "eqcmp", "frames": 1}
            first = client.submit(dict(spec, jobs=2))["job"]
            a = client.wait(first["id"], timeout=120)
            second = client.submit(spec)["job"]
            b = client.wait(second["id"], timeout=120)
        finally:
            thread.stop()
        assert a["fingerprint"] == b["fingerprint"]
        assert b["served_from"] == "store"
        assert b["result"] == a["result"]


class TestGauges:
    def test_serve_gauges_exported(self, fresh_store):
        thread, client = start_server(fresh_store)
        try:
            job = client.submit(atpg_spec())["job"]
            client.wait(job["id"], timeout=60)
            text = client.metrics_text()
        finally:
            thread.stop()
        for name in ("serve_queue_depth", "serve_workers_busy",
                     "serve_heartbeat_age_seconds"):
            assert any(line.split()[0] == name
                       for line in text.splitlines()
                       if line and not line.startswith("#")), name
        assert client is not None
