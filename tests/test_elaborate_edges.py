"""Additional elaboration edge cases and error paths."""

import pytest

from repro.synth import SynthesisError

from .conftest import CircuitHarness


class TestParameterEdges:
    def test_localparam_derived_from_param(self):
        h = CircuitHarness("""
        module m #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
          localparam MASK = (1 << W) - 1;
          assign y = a ^ MASK;
        endmodule
        """)
        assert h.eval(a=0b0101)["y"] == 0b1010

    def test_positional_parameter_override(self):
        h = CircuitHarness("""
        module inv #(parameter W = 1)(input [W-1:0] a, output [W-1:0] y);
          assign y = ~a;
        endmodule
        module top(input [3:0] a, output [3:0] y);
          inv #(4) u(.a(a), .y(y));
        endmodule
        """)
        assert h.eval(a=0b1100)["y"] == 0b0011

    def test_parameter_in_range_and_body(self):
        h = CircuitHarness("""
        module m #(parameter HI = 6, parameter LO = 3)
                  (input [7:0] a, output [HI-LO:0] y);
          assign y = a[HI:LO];
        endmodule
        """)
        assert h.eval(a=0b01111000)["y"] == 0b1111

    def test_non_constant_parameter_rejected(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input a, output y);
              parameter P = a;
              assign y = P;
            endmodule
            """)


class TestWidthEdges:
    def test_comparison_of_mixed_widths(self):
        h = CircuitHarness("""
        module m(input [7:0] a, input [3:0] b, output y);
          assign y = a == b;
        endmodule
        """)
        assert h.eval(a=5, b=5)["y"] == 1
        assert h.eval(a=0x15, b=5)["y"] == 0

    def test_unsized_constant_adapts(self):
        h = CircuitHarness("""
        module m(input [7:0] a, output [7:0] y);
          assign y = a + 255;
        endmodule
        """)
        assert h.eval(a=1)["y"] == 0

    def test_truncating_assignment(self):
        h = CircuitHarness("""
        module m(input [7:0] a, output [3:0] y);
          assign y = a;
        endmodule
        """)
        assert h.eval(a=0xAB)["y"] == 0xB

    def test_shift_amount_beyond_width(self):
        h = CircuitHarness("""
        module m(input [3:0] a, input [3:0] s, output [3:0] y);
          assign y = a << s;
        endmodule
        """)
        assert h.eval(a=0xF, s=8)["y"] == 0

    def test_reduction_of_single_bit(self):
        h = CircuitHarness("""
        module m(input a, output y);
          assign y = &a;
        endmodule
        """)
        assert h.eval(a=1)["y"] == 1


class TestStructuralEdges:
    def test_out_of_range_bit_select_rejected(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input [3:0] a, output y);
              assign y = a[9];
            endmodule
            """)

    def test_out_of_range_part_select_rejected(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input [3:0] a, output [3:0] y);
              assign y = a[7:4];
            endmodule
            """)

    def test_descending_range_rejected(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input [0:3] a, output y);
              assign y = a[0];
            endmodule
            """)

    def test_unknown_port_connection_rejected(self):
        with pytest.raises(Exception):
            CircuitHarness("""
            module leaf(input i, output o);
              assign o = i;
            endmodule
            module top(input a, output y);
              leaf u(.ghost(a), .o(y));
            endmodule
            """)

    def test_gate_primitives_all_types(self):
        h = CircuitHarness("""
        module m(input a, input b,
                 output y_and, output y_or, output y_nand, output y_nor,
                 output y_xor, output y_xnor, output y_not, output y_buf);
          and  (y_and, a, b);
          or   (y_or, a, b);
          nand (y_nand, a, b);
          nor  (y_nor, a, b);
          xor  (y_xor, a, b);
          xnor (y_xnor, a, b);
          not  (y_not, a);
          buf  (y_buf, a);
        endmodule
        """)
        out = h.eval(a=1, b=0)
        assert out == {
            "y_and": 0, "y_or": 1, "y_nand": 1, "y_nor": 0,
            "y_xor": 1, "y_xnor": 0, "y_not": 0, "y_buf": 1,
        }

    def test_three_input_gate(self):
        h = CircuitHarness("""
        module m(input a, input b, input c, output y);
          and (y, a, b, c);
        endmodule
        """)
        assert h.eval(a=1, b=1, c=1)["y"] == 1
        assert h.eval(a=1, b=1, c=0)["y"] == 0

    def test_for_loop_with_zero_iterations(self):
        h = CircuitHarness("""
        module m(input [3:0] a, output reg [3:0] y);
          integer i;
          always @(*) begin
            y = a;
            for (i = 4; i < 4; i = i + 1)
              y[i] = 1'b0;
          end
        endmodule
        """)
        assert h.eval(a=0xF)["y"] == 0xF

    def test_nested_for_loops(self):
        h = CircuitHarness("""
        module m(input [3:0] a, output reg [3:0] cnt);
          integer i;
          integer j;
          reg [3:0] acc;
          always @(*) begin
            acc = 4'd0;
            for (i = 0; i < 2; i = i + 1)
              for (j = 0; j < 2; j = j + 1)
                acc = acc + {3'b000, a[i * 2 + j]};
            cnt = acc;
          end
        endmodule
        """)
        assert h.eval(a=0b1011)["cnt"] == 3

    def test_variable_lhs_index_rejected(self):
        with pytest.raises(SynthesisError):
            CircuitHarness("""
            module m(input [1:0] i, input a, output reg [3:0] y);
              always @(*) begin
                y = 4'd0;
                y[i] = a;
              end
            endmodule
            """)


class TestSequentialEdges:
    def test_async_reset_folded_synchronously(self):
        h = CircuitHarness("""
        module m(input clk, input rst_n, input d, output q);
          reg r;
          always @(posedge clk or negedge rst_n)
            if (!rst_n) r <= 1'b0;
            else r <= d;
          assign q = r;
        endmodule
        """)
        h.clock(clk=0, rst_n=0, d=1)
        assert h.clock(clk=0, rst_n=1, d=1)["q"] == 0
        assert h.clock(clk=0, rst_n=1, d=0)["q"] == 1

    def test_two_always_blocks_different_regs(self):
        h = CircuitHarness("""
        module m(input clk, input d, output q1, output q2);
          reg r1;
          reg r2;
          always @(posedge clk) r1 <= d;
          always @(posedge clk) r2 <= ~d;
          assign q1 = r1;
          assign q2 = r2;
        endmodule
        """)
        h.clock(clk=0, d=1)
        out = h.clock(clk=0, d=1)
        assert out["q1"] == 1 and out["q2"] == 0

    def test_same_reg_in_two_blocks_rejected(self):
        with pytest.raises(Exception):
            CircuitHarness("""
            module m(input clk, input d, output q);
              reg r;
              always @(posedge clk) r <= d;
              always @(posedge clk) r <= ~d;
              assign q = r;
            endmodule
            """)

    def test_blocking_temporary_in_sequential_block(self):
        h = CircuitHarness("""
        module m(input clk, input rst, input [3:0] d, output [3:0] q);
          reg [3:0] r;
          reg [3:0] t;
          always @(posedge clk)
            if (rst)
              r <= 4'd0;
            else begin
              t = d + 4'd1;
              r <= t + 4'd1;
            end
          assign q = r;
        endmodule
        """)
        h.clock(clk=0, rst=1, d=0)
        assert h.clock(clk=0, rst=0, d=3)["q"] == 0
        assert h.clock(clk=0, rst=0, d=0)["q"] == 5
