"""Tests for the benchmark experiment driver (fast pieces only — the ATPG
tables are exercised by benchmarks/)."""

import pytest

from repro.bench.experiments import (
    Arm2Experiments,
    bench_scale,
    default_atpg_options,
)


@pytest.fixture(scope="module")
def exp():
    return Arm2Experiments()


class TestOptions:
    def test_default_options_consistent(self):
        opts = default_atpg_options()
        assert opts.max_frames == 4
        assert opts.schedule()[-1] == 4

    def test_overrides(self):
        opts = default_atpg_options(fault_region="x.", fault_sample=5)
        assert opts.fault_region == "x."
        assert opts.fault_sample == 5

    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "paper"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert bench_scale() == "smoke"


class TestStructuralTables:
    def test_table1_columns(self, exp):
        rows = exp.table1_rows()
        assert len(rows) == 4
        for row in rows:
            assert set(row) == {
                "module", "hier_level", "PI", "PO", "gates_in_module",
                "gates_in_surrounding", "stuck_at_faults",
            }

    def test_table2_and_3_consistency(self, exp):
        t2 = {r["module"]: r for r in exp.table2_rows()}
        t3 = {r["module"]: r for r in exp.table3_rows()}
        assert set(t2) == set(t3)
        for name in t2:
            # Composition keeps no more surrounding logic.
            assert (t3[name]["gates_in_surrounding"]
                    <= t2[name]["gates_in_surrounding"])
            assert 0 < t3[name]["gate_reduction_%"] <= 100

    def test_standalone_netlists_cached(self, exp):
        mut = exp.muts()[0]
        assert exp.standalone_netlist(mut) is exp.standalone_netlist(mut)

    def test_testability_rows(self, exp):
        rows = exp.testability_rows()
        by = {r["module"]: r for r in rows}
        assert by["arm_alu"]["hard_coded_inputs"] == 13

    def test_ablation_deadcode(self, exp):
        rows = exp.ablation_deadcode_rows()
        by = {r["config"]: r for r in rows}
        assert by["optimized"]["total_gates"] < by["raw"]["total_gates"]

    def test_ablation_reuse(self, exp):
        rows = exp.ablation_reuse_rows()
        by = {r["config"]: r for r in rows}
        assert by["reuse"]["tasks_run"] < by["no_reuse"]["tasks_run"]
