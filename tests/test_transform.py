"""Transformed-module tests: pruning, emission, synthesis and behaviour.

The strongest check: the transformed module must behave identically to the
full design on the kept interface — for any input sequence, the kept outputs
must match, because FACTOR's environment S' preserves everything visible to
the MUT (and the ATPG-relevant observation paths).
"""

import random

import pytest

from repro.atpg.simulator import LogicSimulator
from repro.core.composer import ConstraintComposer
from repro.core.extractor import ExtractionMode, MutSpec
from repro.designs import arm2_source, ARM2_MUTS
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


SRC = """
module mut(input [3:0] m_in, output [3:0] m_out);
  assign m_out = ~m_in;
endmodule

module other(input [3:0] i, output [3:0] o);
  assign o = i + 4'd1;
endmodule

module top(input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] w);
  wire [3:0] pre;
  wire [3:0] post;
  assign pre = a & b;
  mut u_mut(.m_in(pre), .m_out(post));
  assign y = post | b;
  other u_other(.i(b), .o(w));
endmodule
"""


def transformed(src, module, path, mode=ExtractionMode.COMPOSE, top=None):
    design = Design(parse_source(src), top=top)
    composer = ConstraintComposer(design, mode)
    return composer.transform(MutSpec(module=module, path=path)), design


class TestPrunedStructure:
    def test_emitted_verilog_reparses(self):
        tr, _ = transformed(SRC, "mut", "u_mut.")
        reparsed = parse_source(tr.verilog)
        assert "mut" in reparsed.module_names()
        assert "top" in reparsed.module_names()
        assert "other" not in reparsed.module_names()

    def test_pruned_ports(self):
        tr, _ = transformed(SRC, "mut", "u_mut.")
        top = tr.source.module("top")
        names = top.port_names()
        assert "a" in names and "b" in names and "y" in names
        assert "w" not in names

    def test_netlist_sizes(self):
        tr, design = transformed(SRC, "mut", "u_mut.")
        full = synthesize(design)
        assert 0 < tr.total_gates < full.gate_count()
        assert tr.mut_gates > 0
        assert tr.surrounding_gates == tr.total_gates - tr.mut_gates
        assert tr.num_pis == len(tr.netlist.pis)
        assert tr.num_pos == len(tr.netlist.pos)

    def test_mut_region_set(self):
        tr, _ = transformed(SRC, "mut", "u_mut.")
        assert tr.mut_region == "u_mut."
        regions = tr.netlist.regions
        assert any(r.startswith("u_mut.") for r in regions.values())


class TestBehaviouralEquivalence:
    def _check_outputs_match(self, src, module, path, cycles=20, top=None,
                             mode=ExtractionMode.COMPOSE, seed=1):
        tr, design = transformed(src, module, path, mode=mode, top=top)
        full = synthesize(design)
        small = tr.netlist
        sim_full = LogicSimulator(full)
        sim_small = LogicSimulator(small)
        full_pis = {full.net_name(pi): pi for pi in full.pis}
        small_pis = {small.net_name(pi): pi for pi in small.pis}
        assert set(small_pis) <= set(full_pis)
        small_pos = {name for _, name in small.po_pairs}
        rng = random.Random(seed)
        for _ in range(cycles):
            bits = {name: rng.randint(0, 1) for name in full_pis}
            out_full = sim_full.step_scalar(bits)
            out_small = sim_small.step_scalar(
                {k: v for k, v in bits.items() if k in small_pis}
            )
            for name in small_pos:
                assert out_small[name] == out_full[name], name

    def test_small_design_equivalent_compose(self):
        self._check_outputs_match(SRC, "mut", "u_mut.")

    def test_small_design_equivalent_conventional(self):
        self._check_outputs_match(SRC, "mut", "u_mut.",
                                  mode=ExtractionMode.CONVENTIONAL)

    def test_sequential_design_equivalent(self):
        src = """
        module mut(input i, output o);
          assign o = ~i;
        endmodule
        module top(input clk, input rst, input d, output y, output dbg);
          reg r;
          wire t;
          always @(posedge clk)
            if (rst) r <= 1'b0;
            else r <= d;
          mut u_mut(.i(r), .o(t));
          assign y = t;
          assign dbg = d ^ clk;
        endmodule
        """
        self._check_outputs_match(src, "mut", "u_mut.", cycles=30)

    @pytest.mark.parametrize("mut", ARM2_MUTS, ids=lambda m: m.name)
    def test_arm2_transformed_equivalent(self, mut):
        self._check_outputs_match(arm2_source(), mut.name, mut.path,
                                  cycles=8, top="arm")


class TestArm2Transforms:
    @pytest.fixture(scope="class")
    def composers(self):
        design = Design(parse_source(arm2_source()), top="arm")
        return (
            design,
            ConstraintComposer(design, ExtractionMode.COMPOSE),
            ConstraintComposer(design, ExtractionMode.CONVENTIONAL),
        )

    @pytest.mark.parametrize("mut", ARM2_MUTS, ids=lambda m: m.name)
    def test_surrounding_drastically_reduced(self, composers, mut):
        design, comp, _ = composers
        tr = comp.transform(MutSpec(module=mut.name, path=mut.path))
        full = synthesize(design)
        full_surr = full.gate_count() - tr.mut_gates
        reduction = 1 - tr.surrounding_gates / full_surr
        assert reduction > 0.5, f"{mut.name}: only {reduction:.0%} reduced"

    @pytest.mark.parametrize("mut", ARM2_MUTS, ids=lambda m: m.name)
    def test_compose_env_not_larger_than_conventional(self, composers, mut):
        _, comp, conv = composers
        spec = MutSpec(module=mut.name, path=mut.path)
        tr_comp = comp.transform(spec)
        tr_conv = conv.transform(spec)
        assert tr_comp.surrounding_gates <= tr_conv.surrounding_gates

    def test_transformed_verilog_resynthesizes(self, composers):
        design, comp, _ = composers
        mut = ARM2_MUTS[0]
        tr = comp.transform(MutSpec(module=mut.name, path=mut.path))
        # The emitted constraint files can be read back and synthesized.
        re_design = Design(parse_source(tr.verilog), top="arm")
        re_netlist = synthesize(re_design)
        assert re_netlist.gate_count() == tr.total_gates
