"""Shared test helpers: tiny simulation harness over synthesized netlists."""

from typing import Dict, Optional

import pytest


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point the persistent artifact store at a per-test temp dir.

    Tests must never read (or pollute) the developer's ~/.cache/repro,
    and a store warmed by an earlier test would make results order
    dependent (and mask recomputation bugs).  Tests that exercise warm
    behavior run the pipeline twice themselves.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-store"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

from repro.atpg.simulator import LogicSimulator
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


class CircuitHarness:
    """Synthesize a Verilog module and evaluate it like a Python function."""

    def __init__(self, source: str, top: Optional[str] = None,
                 optimize: bool = True):
        self.design = Design(parse_source(source), top=top)
        self.netlist = synthesize(self.design, do_optimize=optimize)
        self.sim = LogicSimulator(self.netlist)
        self._pi_widths: Dict[str, int] = {}
        self._po_widths: Dict[str, int] = {}
        for pi in self.netlist.pis:
            base, _ = _split(self.netlist.net_name(pi))
            self._pi_widths[base] = self._pi_widths.get(base, 0) + 1
        for po in self.netlist.pos:
            base, _ = _split(self.netlist.po_name(po))
            self._po_widths[base] = self._po_widths.get(base, 0) + 1

    def eval(self, **inputs: int) -> Dict[str, Optional[int]]:
        """One combinational evaluation (single cycle, word-level I/O).

        Returns PO word values; an output containing any X bit maps to None.
        """
        bit_inputs: Dict[str, int] = {}
        for name, value in inputs.items():
            width = self._pi_widths[name]
            value &= (1 << width) - 1
            if width == 1:
                bit_inputs[name] = value & 1
            else:
                for i in range(width):
                    bit_inputs[f"{name}[{i}]"] = (value >> i) & 1
        out_bits = self.sim.step_scalar(bit_inputs)
        return self._assemble(out_bits)

    def clock(self, **inputs: int) -> Dict[str, Optional[int]]:
        """One clock cycle (state advances); same I/O convention as eval."""
        return self.eval(**inputs)

    def reset_state(self) -> None:
        self.sim.reset_state()

    def _assemble(self, out_bits) -> Dict[str, Optional[int]]:
        words: Dict[str, Optional[int]] = {}
        for name, bit in out_bits.items():
            base, index = _split(name)
            if self._po_widths[base] == 1 and index is None:
                words[base] = bit
                continue
            current = words.get(base, 0)
            if bit is None or current is None:
                words[base] = None
            else:
                words[base] = current | (bit << (index or 0))
        return words


def _split(name):
    if name.endswith("]") and "[" in name:
        base, idx = name[:-1].rsplit("[", 1)
        return base, int(idx)
    return name, None


@pytest.fixture
def harness():
    return CircuitHarness
