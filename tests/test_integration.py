"""Cross-module integration tests."""

import random
import subprocess
import sys

import pytest

from repro.atpg.simulator import LogicSimulator
from repro.designs import arm2_source, small_designs
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source
from repro.verilog.writer import write_source


def random_equivalent(nl_a, nl_b, cycles=16, seed=9):
    """Two netlists with identical PI/PO names behave identically."""
    sim_a, sim_b = LogicSimulator(nl_a), LogicSimulator(nl_b)
    names = [nl_a.net_name(pi) for pi in nl_a.pis]
    assert sorted(names) == sorted(nl_b.net_name(pi) for pi in nl_b.pis)
    rng = random.Random(seed)
    for _ in range(cycles):
        bits = {n: rng.randint(0, 1) for n in names}
        out_a = sim_a.step_scalar(bits)
        out_b = sim_b.step_scalar(bits)
        assert out_a == out_b


class TestWriterSemanticRoundTrip:
    """Emitted Verilog must synthesize to behaviourally identical logic."""

    @pytest.mark.parametrize("name", sorted(small_designs()))
    def test_small_designs(self, name):
        src = small_designs()[name]
        design = Design(parse_source(src))
        emitted = write_source(design.source)
        design2 = Design(parse_source(emitted), top=design.top)
        random_equivalent(synthesize(design), synthesize(design2))

    def test_arm2(self):
        design = Design(parse_source(arm2_source()), top="arm")
        emitted = write_source(design.source)
        design2 = Design(parse_source(emitted), top="arm")
        random_equivalent(synthesize(design), synthesize(design2), cycles=6)


class TestFullFlowOnTinyDesign:
    """Parse -> extract -> transform -> ATPG -> vectors replay, end to end."""

    SRC = """
    module mut(input [1:0] sel, input [3:0] d, output reg o);
      always @(*)
        case (sel)
          2'd0: o = d[0];
          2'd1: o = d[1];
          2'd2: o = d[2];
          default: o = d[3];
        endcase
    endmodule
    module top(input clk, input rst, input [3:0] pins, output out);
      reg [1:0] state;
      always @(posedge clk)
        if (rst) state <= 2'd0;
        else state <= state + 2'd1;
      mut u_mut(.sel(state), .d(pins), .o(out));
    endmodule
    """

    def test_flow(self):
        from repro import Factor
        from repro.atpg.engine import AtpgOptions
        from repro.atpg.fault_sim import FaultSimulator
        from repro.atpg.faults import build_fault_list

        factor = Factor.from_verilog(self.SRC, top="top")
        result = factor.analyze("mut", path="u_mut.")
        report = factor.generate_tests(
            result,
            AtpgOptions(max_frames=6, backtrack_limit=2000,
                        fault_time_limit=5.0),
        )
        # The MUT's sel input cycles through all states: every mux path is
        # exercisable, so coverage should be complete or nearly so.
        assert report.coverage_percent > 90.0

        # Replay every recorded test through the fault simulator and check
        # the bookkeeping: the union of detections matches the report.
        from repro.atpg.engine import AtpgEngine

        opts = AtpgOptions(max_frames=6, backtrack_limit=2000,
                           fault_time_limit=5.0,
                           fault_region=result.transformed.mut_region,
                           pier_qs=frozenset(result.pier_nets))
        engine = AtpgEngine(result.transformed.netlist, opts)
        rep2 = engine.run()
        fsim = FaultSimulator(result.transformed.netlist)
        faults = build_fault_list(result.transformed.netlist,
                                  region=result.transformed.mut_region)
        detected = set()
        for vectors, init in engine.tests:
            detected |= fsim.detected_faults(vectors, faults,
                                             initial_state=init or None)
        assert len(detected) >= rep2.detected * 0.95


class TestExamplesRun:
    def test_quickstart_runs(self):
        proc = subprocess.run(
            [sys.executable, "examples/quickstart.py"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fault coverage" in proc.stdout
        assert "hard-coded" in proc.stdout
