"""Differential tests for the arena fault-simulation backend.

The arena backend (struct-of-arrays netlist encoding, memoized good-machine
pass, exact undetectability filter, cone-partitioned lane blocks in both
generated and interpreted form) must produce detected-fault sets
bit-identical to the interpreted oracle and the compiled backend on every
netlist — including X inputs, preset flip-flop state, Q-net primary outputs
and extra observe points — and the arena itself must survive a pickle round
trip unchanged.
"""

import pickle
import random

import pytest

from repro.atpg.arena import (ArenaFaultSim, NetlistArena, get_arena,
                              get_arena_sim)
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import build_fault_list
from repro.synth.netlist import GateType

from tests.test_compiled import random_bit_vectors, random_netlist


def detect(nl, backend, vectors, faults, initial_state=None, extra=None):
    sim = FaultSimulator(nl, backend=backend)
    return sim.detected_faults(vectors, faults, initial_state=initial_state,
                               extra_observables=extra)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_three_backend_equality(seed):
    nl = random_netlist(seed, num_pis=6, num_dffs=4, num_gates=40)
    vectors = random_bit_vectors(nl, cycles=12, seed=seed + 100, x_rate=0.25)
    faults = build_fault_list(nl)
    interp = detect(nl, "interpreted", vectors, faults)
    compiled = detect(nl, "compiled", vectors, faults)
    arena = detect(nl, "arena", vectors, faults)
    assert interp == compiled == arena


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_three_backend_equality_with_state_and_observables(seed):
    nl = random_netlist(seed, num_pis=5, num_dffs=4, num_gates=30)
    rng = random.Random(seed + 7)
    vectors = random_bit_vectors(nl, cycles=10, seed=seed + 200, x_rate=0.3)
    faults = build_fault_list(nl)
    qs = [d.output for d in nl.dffs()]
    initial_state = {q: rng.randint(0, 1) for q in qs[:2]}
    extra = [g.output for g in nl.gates[:3] if g.type is not GateType.DFF]
    results = [
        detect(nl, backend, vectors, faults, initial_state, extra)
        for backend in ("interpreted", "compiled", "arena")
    ]
    assert results[0] == results[1] == results[2]


def test_codegen_and_interp_paths_agree(monkeypatch):
    """Force the generated-block path on a tiny design and compare with the
    interpreted-block fallback (and the oracle)."""
    nl = random_netlist(9, num_pis=6, num_dffs=3, num_gates=35)
    vectors = random_bit_vectors(nl, cycles=10, seed=901, x_rate=0.2)
    faults = build_fault_list(nl)
    oracle = detect(nl, "interpreted", vectors, faults)

    monkeypatch.setenv("REPRO_ARENA_CODEGEN_MIN_FAULTS", "1")
    monkeypatch.setenv("REPRO_ARENA_CODEGEN_MIN_VECTORS", "1")
    gen_sim = ArenaFaultSim(get_arena(nl))
    gen_det, gen_blocks = gen_sim.detected_faults(vectors, faults)
    assert gen_blocks >= 1
    assert gen_det == oracle

    monkeypatch.setenv("REPRO_ARENA_CODEGEN_MIN_FAULTS", "10000000")
    interp_sim = ArenaFaultSim(get_arena(nl))
    interp_det, _ = interp_sim.detected_faults(vectors, faults)
    assert interp_det == oracle


def test_short_sequences_and_subsets():
    """ATPG-style calls: one or two vectors, shrinking fault subsets."""
    nl = random_netlist(4, num_pis=6, num_dffs=3, num_gates=30)
    faults = sorted(build_fault_list(nl))
    rng = random.Random(42)
    for cycles in (1, 2, 3):
        vectors = random_bit_vectors(nl, cycles=cycles, seed=cycles,
                                     x_rate=0.2)
        subset = [f for f in faults if rng.random() < 0.5]
        assert (detect(nl, "arena", vectors, subset)
                == detect(nl, "interpreted", vectors, subset))


def test_empty_inputs():
    nl = random_netlist(2)
    sim = FaultSimulator(nl, backend="arena")
    assert sim.detected_faults([], build_fault_list(nl)) == set()
    assert sim.detected_faults(
        random_bit_vectors(nl, cycles=3, seed=1), []) == set()


def test_arena_pickle_round_trip_identity():
    nl = random_netlist(7, num_pis=5, num_dffs=3, num_gates=25)
    arena = get_arena(nl)
    clone = pickle.loads(pickle.dumps(arena))
    assert isinstance(clone, NetlistArena)
    assert clone.fingerprint == arena.fingerprint
    assert clone.digest == arena.digest
    for row in ("gate_op", "gate_out", "fanin_off", "fanin", "dff_q",
                "dff_d", "pis", "pos", "adj_off", "adj", "site_rank"):
        assert getattr(clone, row) == getattr(arena, row), row

    # A simulator over the unpickled arena detects the same faults.
    vectors = random_bit_vectors(nl, cycles=8, seed=70, x_rate=0.2)
    faults = build_fault_list(nl)
    det_orig, _ = get_arena_sim(arena).detected_faults(vectors, faults)
    det_clone, _ = get_arena_sim(clone).detected_faults(vectors, faults)
    assert det_orig == det_clone == detect(nl, "interpreted", vectors, faults)


def test_arena_rebuilt_when_netlist_grows():
    nl = random_netlist(3)
    arena = get_arena(nl)
    pi = nl.add_pi("late")
    nl.add_po(nl.add_gate(GateType.NOT, [pi], name="late_g"), "late_o")
    grown = get_arena(nl)
    assert grown is not arena
    assert grown.num_nets == nl.num_nets


def test_refinement_filter_is_exact():
    """Faults pruned by the ever-binary filter are genuinely undetected:
    simulate every fault through the interpreted oracle and check that the
    filter never drops a detected fault."""
    for seed in (11, 12):
        nl = random_netlist(seed, num_pis=5, num_dffs=3, num_gates=30)
        vectors = random_bit_vectors(nl, cycles=6, seed=seed, x_rate=0.4)
        faults = build_fault_list(nl)
        assert (detect(nl, "arena", vectors, faults)
                == detect(nl, "interpreted", vectors, faults))


def test_cone_pack_order_matches_compiled():
    from repro.atpg.compiled import cone_pack_order, site_rank_map

    nl = random_netlist(5)
    faults = build_fault_list(nl)
    arena = get_arena(nl)
    assert (arena.cone_pack_order(faults)
            == cone_pack_order(faults, site_rank_map(nl)))


def test_gate_reconstruction_round_trips():
    nl = random_netlist(6)
    arena = get_arena(nl)
    from repro.atpg.compiled import get_compiled

    rebuilt = arena.gates()
    original = get_compiled(nl).order
    assert [(g.type, g.output, g.inputs) for g in rebuilt] \
        == [(g.type, g.output, g.inputs) for g in original]
