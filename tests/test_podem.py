"""PODEM tests.

The central soundness property: when PODEM reports "detected", fault
simulation of the extracted vector sequence must actually detect the fault;
when it reports "untestable" after an exhaustive search, no random sequence
may detect it.
"""



from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import Fault, build_fault_list
from repro.atpg.podem import Podem
from repro.atpg.sequential import UnrolledModel
from repro.designs import adder_source, counter_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import GateType, Netlist
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


def run_podem(netlist, fault, frames=1, piers=None, backtrack_limit=2000):
    model = UnrolledModel(netlist, frames, pier_qs=piers)
    return Podem(model, fault, backtrack_limit=backtrack_limit).run()


class TestCombinational:
    def test_all_adder_faults_handled(self):
        nl = netlist_of(adder_source())
        fsim = FaultSimulator(nl)
        for fault in build_fault_list(nl):
            result = run_podem(nl, fault)
            assert result.status in ("detected", "untestable")
            if result.detected:
                assert fsim.detected_faults(result.vectors, [fault]) == {
                    fault
                }, fault.describe(nl)

    def test_redundant_fault_proven_untestable(self):
        # y = a & ~a  is constant 0: the AND output s-a-0 is undetectable.
        nl = Netlist()
        a = nl.add_pi("a")
        na = nl.add_gate(GateType.NOT, (a,))
        y = nl.add_gate(GateType.AND, (a, na))
        nl.add_po(y, "y")
        result = run_podem(nl, Fault(y, 0))
        assert result.status == "untestable"
        # The s-a-1 on the same net IS testable.
        result1 = run_podem(nl, Fault(y, 1))
        assert result1.detected

    def test_fault_on_pi(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.AND, (a, b))
        nl.add_po(y, "y")
        result = run_podem(nl, Fault(a, 0))
        assert result.detected
        # Test must set a=1, b=1.
        assert result.vectors[0] == {a: 1, b: 1}

    def test_unobservable_fault_untestable(self):
        nl = Netlist()
        a = nl.add_pi("a")
        nl.add_gate(GateType.NOT, (a,))  # dangling
        y = nl.add_gate(GateType.BUF, (a,))
        nl.add_po(y, "y")
        dangling = nl.gates[0].output
        result = run_podem(nl, Fault(dangling, 0))
        assert result.status == "untestable"

    def test_backtrack_limit_aborts(self):
        # An 18-bit comparator against a constant forces a deep search for
        # the equality cone with a tiny backtrack budget.
        src = """
        module m(input [17:0] a, output y);
          assign y = a == 18'h2a5a5;
        endmodule
        """
        nl = netlist_of(src)
        y_net = nl.pos[0]
        result = run_podem(nl, Fault(y_net, 0), backtrack_limit=0)
        assert result.status in ("aborted", "detected")
        # With budget it must be found.
        good = run_podem(nl, Fault(y_net, 0), backtrack_limit=5000)
        assert good.detected


class TestSequential:
    def test_fsm_fault_needs_multiple_frames(self):
        nl = netlist_of(fsm_source())
        done_net = next(po for po, name in nl.po_pairs if name == "done")
        fault = Fault(done_net, 1)
        # 'done' s-a-1: need state != 11 with a justified (reset) state:
        # two frames suffice (reset, observe).
        shallow = run_podem(nl, fault, frames=1)
        assert not shallow.detected
        deep = run_podem(nl, fault, frames=3)
        assert deep.detected
        fsim = FaultSimulator(nl)
        assert fsim.detected_faults(deep.vectors, [fault]) == {fault}

    def test_detected_vectors_replay_in_fault_simulator(self):
        nl = netlist_of(counter_source())
        fsim = FaultSimulator(nl)
        checked = 0
        for fault in build_fault_list(nl):
            result = run_podem(nl, fault, frames=6)
            if result.detected:
                assert fsim.detected_faults(result.vectors, [fault]) == {
                    fault
                }, fault.describe(nl)
                checked += 1
        assert checked > 10  # most counter faults are testable

    def test_frame0_state_is_unassignable(self):
        nl = netlist_of(counter_source())
        model = UnrolledModel(nl, 2)
        for dff in nl.dffs():
            assert model.is_x_source((0, dff.output))
            assert not model.is_assignable((0, dff.output))
            assert not model.is_x_source((1, dff.output))

    def test_pier_makes_state_assignable(self):
        nl = netlist_of(counter_source())
        q0 = nl.dffs()[0].output
        model = UnrolledModel(nl, 2, pier_qs={q0})
        assert model.is_assignable((0, q0))
        assert (0, q0) in model.assignable
        # The D input of a PIER flop is observable in the last frame.
        assert (1, nl.dffs()[0].inputs[0]) in model.observable

    def test_pier_enables_detection(self):
        # wrap = &cnt requires cnt == 15, reachable only through 15 counts
        # ... or one PIER load.
        nl = netlist_of(counter_source())
        wrap_net = next(po for po, name in nl.po_pairs if name == "wrap")
        fault = Fault(wrap_net, 0)
        piers = {dff.output for dff in nl.dffs()}
        without = run_podem(nl, fault, frames=2)
        with_pier = run_podem(nl, fault, frames=2, piers=piers)
        assert with_pier.detected
        assert not without.detected
        assert with_pier.initial_state  # the loaded register values

    def test_result_accounting(self):
        nl = netlist_of(counter_source())
        fault = build_fault_list(nl)[0]
        result = run_podem(nl, fault, frames=4)
        assert result.frames == 4
        assert result.cpu_seconds >= 0.0
        assert result.backtracks >= 0
        assert result.decisions >= 0


class TestVectorShape:
    def test_vectors_cover_every_frame_and_pi(self):
        nl = netlist_of(counter_source())
        fault = build_fault_list(nl)[3]
        result = run_podem(nl, fault, frames=5)
        if result.detected:
            assert len(result.vectors) == result.frames
            for vec in result.vectors:
                assert set(vec) == set(nl.pis)
                assert all(bit in (0, 1) for bit in vec.values())
