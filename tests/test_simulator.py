"""Tests for the bit-parallel three-valued logic simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.simulator import LogicSimulator, eval_gate
from repro.designs import counter_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import GateType
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


# Three-valued scalar encodings for single-lane tests.
ONE, ZERO, X = (1, 0), (0, 1), (0, 0)


class TestEvalGate:
    def test_and_x_semantics(self):
        # 0 AND X = 0 (controlling value wins); 1 AND X = X.
        assert eval_gate(GateType.AND, [ZERO, X], 1) == ZERO
        assert eval_gate(GateType.AND, [ONE, X], 1) == X
        assert eval_gate(GateType.AND, [ONE, ONE], 1) == ONE

    def test_or_x_semantics(self):
        assert eval_gate(GateType.OR, [ONE, X], 1) == ONE
        assert eval_gate(GateType.OR, [ZERO, X], 1) == X

    def test_xor_x_semantics(self):
        assert eval_gate(GateType.XOR, [ONE, X], 1) == X
        assert eval_gate(GateType.XOR, [ONE, ZERO], 1) == ONE
        assert eval_gate(GateType.XNOR, [ONE, ONE], 1) == ONE

    def test_not(self):
        assert eval_gate(GateType.NOT, [ONE], 1) == ZERO
        assert eval_gate(GateType.NOT, [X], 1) == X

    def test_inverting_forms(self):
        assert eval_gate(GateType.NAND, [ONE, ONE], 1) == ZERO
        assert eval_gate(GateType.NOR, [ZERO, ZERO], 1) == ONE

    def test_bit_parallel_lanes(self):
        # lane 0: 1&1=1; lane 1: 1&0=0; lane 2: X&1=X
        a = (0b011, 0b100)
        b = (0b101, 0b010)
        ones, zeros = eval_gate(GateType.AND, [a, b], 0b111)
        assert ones == 0b001
        assert zeros == 0b110

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 1), st.integers(0, 1))
    def test_binary_lanes_match_python(self, a, b):
        def enc(v):
            return (1, 0) if v else (0, 1)
        assert eval_gate(GateType.AND, [enc(a), enc(b)], 1) == enc(a & b)
        assert eval_gate(GateType.OR, [enc(a), enc(b)], 1) == enc(a | b)
        assert eval_gate(GateType.XOR, [enc(a), enc(b)], 1) == enc(a ^ b)


class TestSequentialSimulation:
    def test_state_starts_x(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        out = sim.step_scalar({"clk": 0, "rst": 0, "en": 1})
        assert all(v is None for k, v in out.items() if k.startswith("q"))

    def test_reset_initialises(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        sim.step_scalar({"clk": 0, "rst": 1, "en": 0})
        out = sim.step_scalar({"clk": 0, "rst": 0, "en": 0})
        q = sum(out[f"q[{i}]"] << i for i in range(4))
        assert q == 0

    def test_counter_counts(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        sim.step_scalar({"clk": 0, "rst": 1, "en": 0})
        values = []
        for _ in range(5):
            out = sim.step_scalar({"clk": 0, "rst": 0, "en": 1})
            values.append(sum(out[f"q[{i}]"] << i for i in range(4)))
        assert values == [0, 1, 2, 3, 4]

    def test_enable_gates_counting(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        sim.step_scalar({"clk": 0, "rst": 1, "en": 0})
        sim.step_scalar({"clk": 0, "rst": 0, "en": 1})
        out = sim.step_scalar({"clk": 0, "rst": 0, "en": 0})
        out2 = sim.step_scalar({"clk": 0, "rst": 0, "en": 0})
        q = sum(out[f"q[{i}]"] << i for i in range(4))
        q2 = sum(out2[f"q[{i}]"] << i for i in range(4))
        assert q == q2 == 1

    def test_fsm_walks_states(self):
        nl = netlist_of(fsm_source())
        sim = LogicSimulator(nl)
        sim.step_scalar({"clk": 0, "rst": 1, "go": 0})
        seen = []
        for cycle in range(5):
            out = sim.step_scalar({"clk": 0, "rst": 0, "go": 1})
            state = out["state_out[1]"] * 2 + out["state_out[0]"]
            seen.append((state, out["done"]))
        assert seen == [(0, 0), (1, 0), (2, 0), (3, 1), (0, 0)]

    def test_reset_state_method(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        sim.step_scalar({"clk": 0, "rst": 1, "en": 0})
        sim.step_scalar({"clk": 0, "rst": 0, "en": 1})
        sim.reset_state()
        out = sim.step_scalar({"clk": 0, "rst": 0, "en": 0})
        assert out["q[0]"] is None

    def test_load_state(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        state = {dff.output: (1, 0) for dff in nl.dffs()}  # all ones
        sim.load_state(state)
        out = sim.step_scalar({"clk": 0, "rst": 0, "en": 0})
        q = sum(out[f"q[{i}]"] << i for i in range(4))
        assert q == 15
        assert out["wrap"] == 1

    def test_run_returns_po_maps(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        rst_vec = {pi: ((1, 0) if nl.net_name(pi) == "rst" else (0, 1))
                   for pi in nl.pis}
        outs = sim.run([rst_vec, {}])
        assert len(outs) == 2
        assert set(outs[0]) == set(nl.pos)

    def test_unknown_pi_name_rejected(self):
        nl = netlist_of(counter_source())
        sim = LogicSimulator(nl)
        with pytest.raises(KeyError):
            sim.step_scalar({"nope": 1})
