"""Fault simulator tests, including equivalence against a brute-force
serial reference implementation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import Fault, build_fault_list
from repro.designs import adder_source, counter_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


def serial_reference(netlist, vectors, faults):
    """Brute force: one full two-valued-with-X simulation per fault."""

    def run(fault):
        state = {dff.output: None for dff in netlist.dffs()}
        good_state = dict(state)
        for vec in vectors:
            good = _cycle(netlist, vec, good_state, None)
            bad = _cycle(netlist, vec, state, fault)
            good_state = {d.output: good.get(d.inputs[0])
                          for d in netlist.dffs()}
            state = {d.output: bad.get(d.inputs[0]) for d in netlist.dffs()}
            for po in netlist.pos:
                g, f = good.get(po), bad.get(po)
                if g is not None and f is not None and g != f:
                    return True
        return False

    return {fault for fault in faults if run(fault)}


def _cycle(netlist, vec, state, fault):
    values = {CONST0: 0, CONST1: 1}

    def inject(net, val):
        if fault is not None and net == fault.net:
            return fault.value
        return val

    for pi in netlist.pis:
        values[pi] = inject(pi, vec.get(pi))
    for dff in netlist.dffs():
        values[dff.output] = inject(dff.output, state.get(dff.output))
    for gate in netlist.topological_order():
        ins = [values.get(i) for i in gate.inputs]
        values[gate.output] = inject(gate.output, _eval(gate.type, ins))
    return values


def _eval(gtype, ins):
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return None if ins[0] is None else 1 - ins[0]
    if gtype in (GateType.AND, GateType.NAND):
        if any(i == 0 for i in ins):
            val = 0
        elif any(i is None for i in ins):
            return None
        else:
            val = 1
        return (1 - val) if gtype is GateType.NAND else val
    if gtype in (GateType.OR, GateType.NOR):
        if any(i == 1 for i in ins):
            val = 1
        elif any(i is None for i in ins):
            return None
        else:
            val = 0
        return (1 - val) if gtype is GateType.NOR else val
    if any(i is None for i in ins):
        return None
    val = 0
    for i in ins:
        val ^= i
    return (1 - val) if gtype is GateType.XNOR else val


def random_vectors(netlist, cycles, seed, reset_name="rst"):
    rng = random.Random(seed)
    vectors = []
    for cycle in range(cycles):
        vec = {pi: rng.randint(0, 1) for pi in netlist.pis}
        if cycle == 0:
            for pi in netlist.pis:
                if netlist.net_name(pi) == reset_name:
                    vec[pi] = 1
        vectors.append(vec)
    return vectors


class TestAgainstSerialReference:
    @pytest.mark.parametrize("src,top", [
        (adder_source(), None),
        (counter_source(), None),
        (fsm_source(), None),
    ])
    def test_matches_reference(self, src, top):
        nl = netlist_of(src, top)
        faults = build_fault_list(nl)
        vectors = random_vectors(nl, 12, seed=3)
        fsim = FaultSimulator(nl, lanes=8)  # force multiple blocks
        fast = fsim.detected_faults(vectors, faults)
        slow = serial_reference(nl, vectors, faults)
        assert fast == slow

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_matches_reference_random_seeds(self, seed):
        nl = netlist_of(fsm_source())
        faults = build_fault_list(nl)
        vectors = random_vectors(nl, 10, seed=seed)
        fast = FaultSimulator(nl, lanes=16).detected_faults(vectors, faults)
        slow = serial_reference(nl, vectors, faults)
        assert fast == slow

    def test_lane_count_does_not_change_result(self):
        nl = netlist_of(counter_source())
        faults = build_fault_list(nl)
        vectors = random_vectors(nl, 10, seed=11)
        r2 = FaultSimulator(nl, lanes=2).detected_faults(vectors, faults)
        r64 = FaultSimulator(nl, lanes=64).detected_faults(vectors, faults)
        assert r2 == r64


class TestBasicDetection:
    def test_stuck_output_detected(self):
        # y = a; fault y-sa0 detected by a=1.
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.BUF, (a,))
        nl.add_po(y, "y")
        fsim = FaultSimulator(nl, lanes=4)
        assert fsim.detected_faults([{a: 1}], [Fault(y, 0)]) == {Fault(y, 0)}
        assert fsim.detected_faults([{a: 0}], [Fault(y, 0)]) == set()

    def test_x_inputs_do_not_detect(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.BUF, (a,))
        nl.add_po(y, "y")
        fsim = FaultSimulator(nl, lanes=4)
        assert fsim.detected_faults([{}], [Fault(y, 0)]) == set()

    def test_uninitialised_flop_blocks_detection(self):
        nl = netlist_of(counter_source())
        faults = build_fault_list(nl)
        fsim = FaultSimulator(nl)
        # Without ever asserting reset, q is X: nothing can be detected
        # through the counter outputs.
        vectors = [{pi: 0 for pi in nl.pis} for _ in range(5)]
        for vec in vectors:
            for pi in nl.pis:
                if nl.net_name(pi) == "en":
                    vec[pi] = 1
        detected = fsim.detected_faults(vectors, faults)
        # Only faults observable through always-binary paths may show; the
        # counter bits themselves stay X, so detection is heavily limited.
        q_nets = {po for po, name in nl.po_pairs if name.startswith("q")}
        assert all(f.net not in q_nets for f in detected)

    def test_needs_at_least_two_lanes(self):
        nl = netlist_of(counter_source())
        with pytest.raises(ValueError):
            FaultSimulator(nl, lanes=1)


class TestPierExtensions:
    def test_initial_state_enables_detection(self):
        nl = netlist_of(counter_source())
        fsim = FaultSimulator(nl)
        wrap_net = next(po for po, name in nl.po_pairs if name == "wrap")
        fault = Fault(wrap_net, 0)
        vec = {pi: 0 for pi in nl.pis}
        # Without a known state the fault is undetectable in one cycle...
        assert fsim.detected_faults([vec], [fault]) == set()
        # ...but pre-loading the counter register to all-ones exposes it.
        init = {dff.output: 1 for dff in nl.dffs()}
        assert fsim.detected_faults([vec], [fault], initial_state=init) == {
            fault
        }

    def test_extra_observables(self):
        # Internal net observed via the PIER store path.
        nl = Netlist()
        a = nl.add_pi("a")
        hidden = nl.add_gate(GateType.NOT, (a,))
        q = nl.add_gate(GateType.DFF, (hidden,))
        unused = nl.add_gate(GateType.AND, (q, a))
        nl.add_po(unused, "y")
        fsim = FaultSimulator(nl, lanes=4)
        fault = Fault(hidden, 0)
        vec = {a: 0}  # hidden should be 1; fault forces 0
        assert fsim.detected_faults([vec], [fault]) == set()
        assert fsim.detected_faults(
            [vec], [fault], extra_observables=[hidden]
        ) == {fault}
