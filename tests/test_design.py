"""Unit tests for the hierarchy design database."""

import pytest

from repro.designs import arm2_design, mux_tree_source
from repro.hierarchy import Design, DesignError
from repro.verilog.parser import parse_source


NESTED = """
module leaf(input i, output o);
  assign o = ~i;
endmodule
module mid(input i, output o);
  wire t;
  leaf u_a(.i(i), .o(t));
  leaf u_b(.i(t), .o(o));
endmodule
module top(input i, output o);
  mid u_mid(.i(i), .o(o));
endmodule
"""


class TestTopInference:
    def test_infers_unique_top(self):
        design = Design(parse_source(NESTED))
        assert design.top == "top"

    def test_explicit_top(self):
        design = Design(parse_source(NESTED), top="mid")
        assert design.top == "mid"

    def test_ambiguous_top_rejected(self):
        src = "module a(); endmodule\nmodule b(); endmodule"
        with pytest.raises(DesignError):
            Design(parse_source(src))

    def test_missing_top_rejected(self):
        with pytest.raises(DesignError):
            Design(parse_source(NESTED), top="nope")

    def test_all_instantiated_rejected(self):
        src = """
        module a(); b u(); endmodule
        module b(); a u(); endmodule
        """
        with pytest.raises(DesignError):
            Design(parse_source(src))


class TestValidation:
    def test_unknown_child_module(self):
        src = "module top(); ghost u1(); endmodule"
        with pytest.raises(DesignError):
            Design(parse_source(src))

    def test_cycle_detection(self):
        src = """
        module a(); b u(); endmodule
        module b(); a u(); endmodule
        module top(); a u(); endmodule
        """
        with pytest.raises(DesignError):
            Design(parse_source(src), top="top")

    def test_duplicate_modules(self):
        src = "module m(); endmodule\nmodule m(); endmodule"
        with pytest.raises(DesignError):
            Design(parse_source(src))


class TestHierarchyQueries:
    def setup_method(self):
        self.design = Design(parse_source(NESTED))

    def test_children(self):
        assert self.design.children("top") == [("u_mid", "mid")]
        assert self.design.children("mid") == [
            ("u_a", "leaf"), ("u_b", "leaf")
        ]

    def test_parents(self):
        assert self.design.parents("leaf") == [
            ("mid", "u_a"), ("mid", "u_b")
        ]
        assert self.design.parents("top") == []

    def test_depth(self):
        assert self.design.depth("top") == 0
        assert self.design.depth("mid") == 1
        assert self.design.depth("leaf") == 2

    def test_paths_to_multiple_instances(self):
        paths = self.design.paths_to("leaf")
        assert {str(p) for p in paths} == {"top.u_mid.u_a", "top.u_mid.u_b"}
        for path in paths:
            assert path.leaf_module == "leaf"
            assert path.depth == 2
            assert path.parent().leaf_module == "mid"

    def test_hierarchy_chain(self):
        assert self.design.hierarchy_chain("leaf") == ["top", "mid", "leaf"]

    def test_modules_under(self):
        assert self.design.modules_under("mid") == {"mid", "leaf"}
        assert self.design.modules_under("top") == {"top", "mid", "leaf"}

    def test_subsource(self):
        sub = self.design.subsource("mid")
        assert sorted(sub.module_names()) == ["leaf", "mid"]

    def test_instance_in(self):
        inst = self.design.instance_in("mid", "u_a")
        assert inst.module_name == "leaf"
        with pytest.raises(DesignError):
            self.design.instance_in("mid", "nope")

    def test_unreachable_module_depth(self):
        src = NESTED + "\nmodule orphan(); endmodule"
        with pytest.raises(DesignError):
            Design(parse_source(src), top="top").depth("orphan")


class TestArm2Hierarchy:
    def setup_method(self):
        self.design = arm2_design()

    def test_top(self):
        assert self.design.top == "arm"

    def test_mut_depths_match_table1(self):
        assert self.design.depth("arm_alu") == 3
        assert self.design.depth("regfile_struct") == 4
        assert self.design.depth("exc") == 2
        assert self.design.depth("forward") == 3

    def test_reg_cells_deepest(self):
        assert self.design.depth("reg16") == 5

    def test_mux_tree(self):
        design = Design(parse_source(mux_tree_source()))
        assert design.top == "mux4"
        assert len(design.paths_to("mux2")) == 3
