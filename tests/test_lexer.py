"""Unit tests for the Verilog tokenizer."""

import pytest

from repro.verilog.lexer import (
    Lexer,
    LexError,
    TokenKind,
    parse_number_literal,
)


def kinds(source):
    return [(t.kind, t.value) for t in Lexer(source).tokenize()[:-1]]


class TestBasicTokens:
    def test_identifier(self):
        assert kinds("foo") == [(TokenKind.IDENT, "foo")]

    def test_identifier_with_dollar_and_underscore(self):
        assert kinds("_a$b1") == [(TokenKind.IDENT, "_a$b1")]

    def test_keyword(self):
        assert kinds("module") == [(TokenKind.KEYWORD, "module")]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("modulex") == [(TokenKind.IDENT, "modulex")]

    def test_eof_token_present(self):
        tokens = Lexer("a").tokenize()
        assert tokens[-1].kind is TokenKind.EOF

    def test_empty_input(self):
        tokens = Lexer("").tokenize()
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_string_literal(self):
        assert kinds('"hello world"') == [(TokenKind.STRING, "hello world")]


class TestNumbers:
    def test_plain_decimal(self):
        assert kinds("42") == [(TokenKind.NUMBER, "42")]

    def test_sized_hex(self):
        assert kinds("8'hFF") == [(TokenKind.NUMBER, "8'hFF")]

    def test_sized_binary(self):
        assert kinds("4'b1010") == [(TokenKind.NUMBER, "4'b1010")]

    def test_underscores_allowed(self):
        assert kinds("16'hDE_AD") == [(TokenKind.NUMBER, "16'hDE_AD")]

    def test_unsized_based(self):
        assert kinds("'b0") == [(TokenKind.NUMBER, "'b0")]

    def test_wildcard_digits_kept_in_token(self):
        assert kinds("4'b1?1?") == [(TokenKind.NUMBER, "4'b1?1?")]

    def test_malformed_based_literal(self):
        with pytest.raises(LexError):
            Lexer("4'q0").tokenize()


class TestOperators:
    @pytest.mark.parametrize("op", [
        "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "~&", "~|", "~^",
        "^~", "===", "!==", "<<<", ">>>", "**", "+:", "-:",
    ])
    def test_multichar_operator(self, op):
        assert kinds(op) == [(TokenKind.OP, op)]

    def test_maximal_munch(self):
        # "<<<" must lex as one token, not "<<" then "<".
        assert kinds("a <<< b") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.OP, "<<<"),
            (TokenKind.IDENT, "b"),
        ]

    def test_single_ops(self):
        assert kinds("(a+b)") == [
            (TokenKind.OP, "("),
            (TokenKind.IDENT, "a"),
            (TokenKind.OP, "+"),
            (TokenKind.IDENT, "b"),
            (TokenKind.OP, ")"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            Lexer("a \x01 b").tokenize()


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [
            (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            Lexer("/* oops").tokenize()

    def test_compiler_directive_skipped(self):
        assert kinds("`timescale 1ns/1ps\nfoo") == [(TokenKind.IDENT, "foo")]

    def test_line_numbers(self):
        tokens = Lexer("a\nb\n\nc").tokenize()
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_line_numbers_after_block_comment(self):
        tokens = Lexer("/* one\ntwo */ x").tokenize()
        assert tokens[0].line == 2


class TestParseNumberLiteral:
    def test_plain(self):
        assert parse_number_literal("42") == (None, 42)

    def test_sized_hex(self):
        assert parse_number_literal("8'hff") == (8, 255)

    def test_sized_binary(self):
        assert parse_number_literal("4'b1010") == (4, 10)

    def test_octal(self):
        assert parse_number_literal("6'o77") == (6, 63)

    def test_signed_marker(self):
        assert parse_number_literal("8'sd5") == (8, 5)

    def test_truncation_to_width(self):
        assert parse_number_literal("4'hff") == (4, 15)

    def test_underscores(self):
        assert parse_number_literal("16'hAB_CD") == (16, 0xABCD)

    def test_x_digits_rejected(self):
        with pytest.raises(ValueError):
            parse_number_literal("4'b1x0z")

    def test_unsized_based(self):
        assert parse_number_literal("'d9") == (None, 9)
