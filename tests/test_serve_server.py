"""End-to-end job server tests: an in-thread server with real clients.

The servers here run with ``worker_mode="thread"`` so job execution can be
intercepted (for deterministic coalescing/queue-full/drain scenarios) or
run the real pipeline on a tiny design (for round-trip coverage), all
inside one process.
"""

import json
import threading

import pytest

import repro.serve.server as server_mod
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread

TINY = """
module leaf(input a, input b, output y);
  assign y = a & b;
endmodule
module topm(input a, input b, input c, output y);
  wire t;
  leaf u0(.a(a), .b(b), .y(t));
  assign y = t | c;
endmodule
"""


@pytest.fixture()
def fresh_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path


def start_server(**overrides):
    config = ServeConfig(port=0, worker_mode="thread", jobs=1,
                         drain_timeout=60.0, **overrides)
    thread = ServerThread(config)
    client = ServeClient(thread.start(), timeout=30.0)
    return thread, client


DEAD_NET = """
module m(input a, input dead, output y);
  assign y = ~a;
endmodule
"""


def lint_spec(**overrides):
    spec = {"op": "lint", "source": TINY, "top": "topm"}
    spec.update(overrides)
    return spec


class BlockingWorker:
    """Replaces ``execute_job``: holds jobs until released, echoes specs."""

    def __init__(self):
        self.started = threading.Semaphore(0)
        self.release = threading.Event()
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, spec_dict, fresh_registry=True, **kwargs):
        with self._lock:
            self.calls.append(spec_dict)
        self.started.release()
        assert self.release.wait(timeout=60), "test never released worker"
        return {"ok": True, "result": {"echo": spec_dict["op"]},
                "error": None, "wall_s": 0.01, "cpu_s": 0.01, "metrics": {},
                "spans": []}


class TestEndpoints:
    def test_health_metrics_and_errors(self, fresh_store):
        thread, client = start_server()
        try:
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"] == 1
            assert health["worker_mode"] == "thread"

            text = client.metrics_text()
            assert "serve_http_requests_total" in text
            assert "# TYPE serve_workers gauge" in text

            with pytest.raises(ServeError) as exc:
                client.job("job-999-nope")
            assert exc.value.status == 404
            status, _headers, _body = client.request("DELETE", "/v1/jobs")
            assert status == 405
            status, _headers, _body = client.request("GET", "/nope")
            assert status == 404
        finally:
            thread.stop()

    def test_submit_validation_maps_to_400(self, fresh_store):
        thread, client = start_server()
        try:
            for bad in ({"op": "explode", "source": TINY},
                        {"op": "lint"},
                        {"op": "atpg", "source": TINY},   # missing mut
                        {"op": "lint", "source": TINY, "bogus": 1}):
                with pytest.raises(ServeError) as exc:
                    client.submit(bad)
                assert exc.value.status == 400
            status, _headers, body = client.request(
                "POST", "/v1/jobs", payload=None)
            assert status == 400  # no body at all
            assert "error" in body
        finally:
            thread.stop()


class TestPipelineRoundTrip:
    def test_lint_then_store_served_resubmit(self, fresh_store):
        thread, client = start_server()
        try:
            base_store = client.metric_value("serve_store_served_total") or 0
            response = client.submit(lint_spec())
            job = client.wait(response["job"]["id"], timeout=60)
            assert job["status"] == "done"
            assert job["served_from"] == "pipeline"
            assert job["result"]["clean"] is True

            again = client.submit(lint_spec())
            assert again["job"]["status"] == "done"
            assert again["job"]["served_from"] == "store"
            assert again["job"]["result"] == job["result"]
            assert again["job"]["id"] != job["id"]
            served = client.metric_value("serve_store_served_total")
            assert served == base_store + 1
        finally:
            thread.stop()

    def test_atpg_and_analyze_on_tiny_design(self, fresh_store):
        thread, client = start_server()
        try:
            response = client.submit({
                "op": "atpg", "source": TINY, "top": "topm", "mut": "leaf",
                "frames": 1, "backtrack_limit": 10})
            job = client.wait(response["job"]["id"], timeout=120)
            assert job["status"] == "done", job["error"]
            assert job["result"]["coverage_percent"] == 100.0

            response = client.submit({
                "op": "analyze", "source": TINY, "top": "topm",
                "mut": "leaf"})
            job = client.wait(response["job"]["id"], timeout=120)
            assert job["status"] == "done", job["error"]
            assert job["result"]["mut_gates"] >= 1
        finally:
            thread.stop()

    def test_explain_then_store_served_resubmit(self, fresh_store):
        spec = {"op": "explain", "source": DEAD_NET, "top": "m",
                "target": "dead"}
        thread, client = start_server()
        try:
            response = client.submit(spec)
            job = client.wait(response["job"]["id"], timeout=60)
            assert job["status"] == "done", job["error"]
            result = job["result"]
            assert result["blocked"] is True
            assert result["root_cause"] == "unused"
            assert len(result["trace"]["hops"]) >= 2
            assert result["witness"]["kind"] == "vector_pair"
            assert result["witness"]["verified"] is True

            again = client.submit(spec)
            assert again["job"]["status"] == "done"
            assert again["job"]["served_from"] == "store"
            assert again["job"]["result"] == result

            # A different target is a different fingerprint: no warm hit.
            other = client.submit(dict(spec, target="a"))
            fresh = client.wait(other["job"]["id"], timeout=60)
            assert fresh["served_from"] == "pipeline"
            assert fresh["result"]["blocked"] is False
        finally:
            thread.stop()

    def test_pipeline_failure_becomes_failed_job(self, fresh_store):
        thread, client = start_server()
        try:
            response = client.submit(lint_spec(top="no_such_module"))
            job = client.wait(response["job"]["id"], timeout=60)
            assert job["status"] == "failed"
            assert job["error"]
        finally:
            thread.stop()

    def test_store_round_trip_survives_restart(self, fresh_store):
        thread, client = start_server()
        try:
            first = client.submit(lint_spec())
            client.wait(first["job"]["id"], timeout=60)
        finally:
            thread.stop()
        # A brand-new server over the same store answers instantly.
        thread, client = start_server()
        try:
            again = client.submit(lint_spec())
            assert again["job"]["served_from"] == "store"
        finally:
            thread.stop()


class TestCoalescing:
    def test_eight_concurrent_identical_submissions_execute_once(
            self, fresh_store, monkeypatch):
        """The acceptance scenario: 8 concurrent identical submissions,
        exactly one pipeline execution, 7 absorbed."""
        worker = BlockingWorker()
        monkeypatch.setattr(server_mod, "execute_job", worker)
        thread, client = start_server()
        try:
            executed_0 = client.metric_value("serve_executed_total") or 0
            coalesced_0 = client.metric_value("serve_coalesced_total") or 0
            spec = lint_spec(seed=77)
            responses = [None] * 8

            def submit(index):
                local = ServeClient(thread.address, timeout=30.0)
                responses[index] = local.submit(spec)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            worker.release.set()

            assert all(response is not None for response in responses)
            ids = {response["job"]["id"] for response in responses}
            assert len(ids) == 1  # every client shares the one job
            assert sum(response["coalesced"]
                       for response in responses) == 7
            job = client.wait(ids.pop(), timeout=60)
            assert job["status"] == "done"
            assert job["coalesced_count"] == 7
            assert len(worker.calls) == 1
            executed = client.metric_value("serve_executed_total")
            coalesced = client.metric_value("serve_coalesced_total")
            assert executed - executed_0 == 1
            assert coalesced - coalesced_0 == 7
        finally:
            worker.release.set()
            thread.stop()

    def test_distinct_specs_do_not_coalesce(self, fresh_store, monkeypatch):
        worker = BlockingWorker()
        monkeypatch.setattr(server_mod, "execute_job", worker)
        thread, client = start_server()
        try:
            first = client.submit(lint_spec(seed=1))
            second = client.submit(lint_spec(seed=2))
            assert first["job"]["id"] != second["job"]["id"]
            assert not first["coalesced"] and not second["coalesced"]
            worker.release.set()
            assert client.wait(first["job"]["id"])["status"] == "done"
            assert client.wait(second["job"]["id"])["status"] == "done"
            assert len(worker.calls) == 2
        finally:
            worker.release.set()
            thread.stop()


class TestAdmission:
    def test_queue_full_answers_429_with_retry_after(
            self, fresh_store, monkeypatch):
        worker = BlockingWorker()
        monkeypatch.setattr(server_mod, "execute_job", worker)
        thread, client = start_server(queue_depth=2)
        try:
            client.submit(lint_spec(seed=1))
            worker.started.acquire(timeout=30)  # seed=1 is on the worker
            client.submit(lint_spec(seed=2))
            client.submit(lint_spec(seed=3))    # queue now at depth 2
            with pytest.raises(ServeError) as exc:
                client.submit(lint_spec(seed=4))
            assert exc.value.status == 429
            assert exc.value.retry_after >= 1
            assert "retry" in exc.value.message.lower()
        finally:
            worker.release.set()
            thread.stop()

    def test_queued_deadline_expires_to_failed(
            self, fresh_store, monkeypatch):
        worker = BlockingWorker()
        monkeypatch.setattr(server_mod, "execute_job", worker)
        thread, client = start_server()
        try:
            blocker = client.submit(lint_spec(seed=1))
            worker.started.acquire(timeout=30)
            doomed = client.submit(lint_spec(seed=2, deadline_s=0.05))
            import time
            time.sleep(0.2)  # let the queue budget lapse
            worker.release.set()
            job = client.wait(doomed["job"]["id"], timeout=30)
            assert job["status"] == "failed"
            assert "deadline" in job["error"]
            assert client.wait(blocker["job"]["id"])["status"] == "done"
            assert len(worker.calls) == 1  # the doomed job never ran
        finally:
            worker.release.set()
            thread.stop()

    def test_job_timeout_fails_overrunning_job(
            self, fresh_store, monkeypatch):
        worker = BlockingWorker()
        monkeypatch.setattr(server_mod, "execute_job", worker)
        thread, client = start_server(job_timeout=0.2)
        try:
            response = client.submit(lint_spec(seed=9))
            job = client.wait(response["job"]["id"], timeout=30)
            assert job["status"] == "failed"
            assert "budget" in job["error"]
        finally:
            worker.release.set()
            thread.stop()


class TestDrainAndResume:
    def test_drain_persists_backlog_and_restart_resumes_it(
            self, fresh_store, monkeypatch):
        """SIGTERM-equivalent drain under load loses zero jobs: the
        running job finishes, the queued backlog survives in the journal,
        and a restarted server resumes and completes it."""
        journal = str(fresh_store / "journal.jsonl")
        worker = BlockingWorker()
        with monkeypatch.context() as patch:
            patch.setattr(server_mod, "execute_job", worker)
            thread, client = start_server(journal_path=journal)
            running = client.submit(lint_spec(seed=1))
            worker.started.acquire(timeout=30)
            queued = [client.submit(lint_spec(seed=seed))
                      for seed in (2, 3)]
            # Drain while one job runs and two sit queued; only release
            # the worker once admission has observably closed, so the
            # backlog cannot sneak onto the worker first.
            thread._loop.call_soon_threadsafe(
                thread._server.request_drain)
            import time
            for _ in range(200):
                if client.health()["status"] == "draining":
                    break
                time.sleep(0.01)
            assert client.health()["status"] == "draining"
            worker.release.set()
            thread.stop()

        events = [json.loads(line) for line in open(journal)]
        # Compared on restart: the journal still holds the queued
        # submissions; the running job completed during the drain.
        done_ids = {e["id"] for e in events if e["event"] == "done"}
        assert running["job"]["id"] in done_ids

        thread, client = start_server(journal_path=journal)
        try:
            resumed_ids = {response["job"]["id"] for response in queued}
            for job_id in resumed_ids:
                job = client.wait(job_id, timeout=120)
                assert job["status"] == "done", job["error"]
                assert job["served_from"] == "pipeline"
        finally:
            thread.stop()
        # Nothing left to resume: the journal compacted to empty.
        thread, client = start_server(journal_path=journal)
        try:
            assert client.jobs()["jobs"] == []
        finally:
            thread.stop()

    def test_draining_server_rejects_new_submissions(
            self, fresh_store, monkeypatch):
        worker = BlockingWorker()
        monkeypatch.setattr(server_mod, "execute_job", worker)
        thread, client = start_server()
        try:
            client.submit(lint_spec(seed=1))
            worker.started.acquire(timeout=30)
            thread._loop.call_soon_threadsafe(
                thread._server.request_drain)
            health = client.wait_until_up()
            assert health["status"] == "draining"
            with pytest.raises(ServeError) as exc:
                client.submit(lint_spec(seed=2))
            assert exc.value.status == 503
        finally:
            worker.release.set()
            thread.stop()


class TestListing:
    def test_list_and_status_filter(self, fresh_store):
        thread, client = start_server()
        try:
            done = client.submit(lint_spec())
            client.wait(done["job"]["id"], timeout=60)
            failed = client.submit(lint_spec(top="missing"))
            client.wait(failed["job"]["id"], timeout=60)

            listing = client.jobs()
            assert {job["id"] for job in listing["jobs"]} \
                == {done["job"]["id"], failed["job"]["id"]}
            assert "result" not in listing["jobs"][0]
            only_failed = client.jobs(status="failed")
            assert [job["id"] for job in only_failed["jobs"]] \
                == [failed["job"]["id"]]
        finally:
            thread.stop()
