"""Transient (SEU) fault model: semantics and backend equivalence.

A transient fault forces one net to one value for exactly one clock
cycle; it is detected only if the single-cycle disturbance propagates to
an observe point — possibly through flip-flop state, cycles later.  The
arena backend's transient path (good-plane pre-filter + cycle-gated lane
blocks) must produce detected sets bit-identical to the flat lane-block
path used by the interpreted/compiled backends, on every netlist,
including X inputs and preset state.
"""

import random

import pytest

from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import (FAULT_MODELS, TransientFault,
                               build_transient_fault_list)
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source

from tests.test_compiled import random_bit_vectors, random_netlist


def detect(nl, backend, vectors, faults, initial_state=None, extra=None):
    sim = FaultSimulator(nl, backend=backend)
    return sim.detected_faults(vectors, faults, initial_state=initial_state,
                               extra_observables=extra)


# -- fault list construction -------------------------------------------------


def test_fault_models_enumerates_the_cli_choices():
    assert FAULT_MODELS == ("stuck", "transient", "both")


def test_transient_list_full_universe_and_ordering():
    nl = random_netlist(0, num_pis=3, num_dffs=1, num_gates=5)
    cycles = 3
    faults = build_transient_fault_list(nl, cycles)
    sites = set(nl.pis) | {g.output for g in nl.gates}
    assert len(faults) == len(sites) * 2 * cycles
    assert faults == sorted(faults)
    assert len(set(faults)) == len(faults)


def test_transient_list_sampling_is_seeded_and_in_universe():
    nl = random_netlist(1, num_pis=4, num_dffs=2, num_gates=12)
    a = build_transient_fault_list(nl, 6, sample=20, seed=11)
    b = build_transient_fault_list(nl, 6, sample=20, seed=11)
    c = build_transient_fault_list(nl, 6, sample=20, seed=12)
    assert a == b
    assert a != c
    assert len(a) == 20
    universe = set(build_transient_fault_list(nl, 6))
    assert set(a) <= universe


def test_transient_list_empty_window():
    nl = random_netlist(2)
    assert build_transient_fault_list(nl, 0) == []


# -- semantics ---------------------------------------------------------------

INV = "module t(input a, output y); assign y = ~a; endmodule\n"


def _netlist(src):
    return synthesize(Design(parse_source(src)))


def test_flip_visible_only_during_its_cycle():
    nl = _netlist(INV)
    a = nl.pis[0]
    y = nl.pos[0]
    vectors = [{a: 0}, {a: 0}, {a: 0}]  # good y == 1 every cycle
    flips = [TransientFault(y, 0, cycle) for cycle in range(3)]
    # Each upset lands on the PO during its own cycle: all detected.
    assert detect(nl, "interpreted", vectors, flips) == set(flips)
    # Forcing the value the good machine already has is a non-event.
    same = [TransientFault(y, 1, cycle) for cycle in range(3)]
    assert detect(nl, "interpreted", vectors, same) == set()
    # A flip after the applied window never happens.
    late = [TransientFault(y, 0, 5)]
    assert detect(nl, "interpreted", vectors, late) == set()


def test_flip_propagates_through_state():
    # y observes the flop one cycle after d captured it.
    src = ("module t(input clk, input d, output y);\n"
           "  reg q;\n"
           "  always @(posedge clk) q <= d;\n"
           "  assign y = q;\n"
           "endmodule\n")
    nl = _netlist(src)
    d = next(pi for pi in nl.pis if nl.net_name(pi) == "d")
    vectors = [{d: 0}, {d: 0}, {d: 0}]
    # Upsetting Q at cycle 0 flows straight to the PO at cycle 0; the
    # same upset at the last cycle is also PO-visible (Q drives y
    # combinationally).  An upset on d's value=1 at cycle 1 is captured
    # into state and observed at cycle 2.
    upset_d = TransientFault(d, 1, 1)
    detected = detect(nl, "interpreted", vectors, [upset_d])
    assert detected == {upset_d}
    # ...but not if the window ends before the observation cycle.
    assert detect(nl, "interpreted", vectors[:2], [upset_d]) == set()


# -- backend equivalence -----------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_transient_backend_equality(seed):
    nl = random_netlist(seed, num_pis=6, num_dffs=4, num_gates=40)
    cycles = 10
    vectors = random_bit_vectors(nl, cycles=cycles, seed=seed + 100,
                                 x_rate=0.0)
    faults = build_transient_fault_list(nl, cycles, sample=150,
                                        seed=seed + 1)
    interp = detect(nl, "interpreted", vectors, faults)
    compiled = detect(nl, "compiled", vectors, faults)
    arena = detect(nl, "arena", vectors, faults)
    assert interp == compiled == arena


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_transient_backend_equality_with_x_and_state(seed):
    nl = random_netlist(seed, num_pis=5, num_dffs=4, num_gates=30)
    rng = random.Random(seed + 7)
    cycles = 8
    vectors = random_bit_vectors(nl, cycles=cycles, seed=seed + 200,
                                 x_rate=0.3)
    faults = build_transient_fault_list(nl, cycles, sample=120,
                                        seed=seed + 2)
    qs = [dff.output for dff in nl.dffs()]
    initial_state = {q: rng.randint(0, 1) for q in qs[:2]}
    results = [
        detect(nl, backend, vectors, faults, initial_state)
        for backend in ("interpreted", "compiled", "arena")
    ]
    assert results[0] == results[1] == results[2]


@pytest.mark.parametrize("seed", [0, 1])
def test_mixed_stuck_and_transient_lists(seed):
    """A single detected_faults call grades both models at once."""
    from repro.atpg.faults import build_fault_list

    nl = random_netlist(seed, num_pis=5, num_dffs=3, num_gates=25)
    cycles = 6
    vectors = random_bit_vectors(nl, cycles=cycles, seed=seed + 50,
                                 x_rate=0.1)
    mixed = list(build_fault_list(nl)) + \
        build_transient_fault_list(nl, cycles, sample=60, seed=seed)
    interp = detect(nl, "interpreted", vectors, mixed)
    arena = detect(nl, "arena", vectors, mixed)
    assert interp == arena
    # The split is by type, not by position in the list.
    assert {f for f in interp if isinstance(f, TransientFault)} <= \
        set(mixed)


# -- engine integration ------------------------------------------------------


def _engine_report(nl, fault_model, seed=7):
    opts = AtpgOptions(max_frames=2, backtrack_limit=20,
                       random_sequences=2, random_sequence_length=6,
                       seed=seed, fault_model=fault_model,
                       transient_sample=40)
    return AtpgEngine(nl, opts).run()


def test_engine_fault_models():
    nl = random_netlist(3, num_pis=5, num_dffs=3, num_gates=25)
    stuck = _engine_report(nl, "stuck")
    assert stuck.transient_total == 0
    assert "seu" not in stuck.as_row()

    both = _engine_report(nl, "both")
    assert both.transient_total > 0
    assert 0 <= both.transient_detected <= both.transient_total
    row = both.as_row()
    assert row["seu"] == both.transient_total
    assert row["seu_cov%"] == round(both.transient_coverage_percent, 2)
    # The stuck-at phases are unchanged by the extra grading phase.
    assert both.detected == stuck.detected
    assert both.coverage_percent == stuck.coverage_percent

    transient = _engine_report(nl, "transient")
    assert transient.transient_total > 0
    # transient mode skips PODEM: random-phase vectors only.
    assert transient.aborted == 0


def test_engine_transient_runs_are_deterministic():
    nl = random_netlist(4, num_pis=5, num_dffs=3, num_gates=25)
    a = _engine_report(nl, "both")
    b = _engine_report(nl, "both")
    timing = ("tgen_s", "total_s")
    assert {k: v for k, v in a.as_row().items() if k not in timing} == \
        {k: v for k, v in b.as_row().items() if k not in timing}
    assert a.transient_detected == b.transient_detected
