"""Property-based soundness of the extraction on random designs.

For randomly generated hierarchical designs and randomly chosen MUTs, the
transformed module must agree with the full design on every kept output for
any input sequence — the fundamental guarantee that makes ATPG results on
M + S' valid for the chip.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.atpg.simulator import LogicSimulator
from repro.core.composer import ConstraintComposer
from repro.core.extractor import ExtractionMode, MutSpec
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def random_design(seed):
    """A top module with a grid of small blocks wired randomly."""
    rng = random.Random(seed)
    n_blocks = rng.randint(2, 4)
    blocks = []
    for b in range(n_blocks):
        op = rng.choice(["&", "|", "^", "+"])
        inv = rng.choice(["~", ""])
        blocks.append(f"""
module blk{b}(input [3:0] x, input [3:0] y, output [3:0] z);
  assign z = {inv}(x {op} y);
endmodule
""")
    lines = ["module top(input [3:0] p, input [3:0] q, input [3:0] r,"]
    outs = ", ".join(f"output [3:0] o{b}" for b in range(n_blocks))
    lines.append(f"           {outs});")
    available = ["p", "q", "r"]
    for b in range(n_blocks):
        x = rng.choice(available)
        y = rng.choice(available)
        lines.append(f"  wire [3:0] t{b};")
        lines.append(f"  blk{b} u{b}(.x({x}), .y({y}), .z(t{b}));")
        lines.append(f"  assign o{b} = t{b};")
        available.append(f"t{b}")
    lines.append("endmodule")
    src = "\n".join(blocks) + "\n".join(lines)
    mut_index = rng.randint(0, n_blocks - 1)
    return src, f"blk{mut_index}", f"u{mut_index}."


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 6),
       st.sampled_from([ExtractionMode.COMPOSE,
                        ExtractionMode.CONVENTIONAL]))
def test_transformed_module_agrees_with_full_design(seed, mode):
    src, mut_module, mut_path = random_design(seed)
    design = Design(parse_source(src), top="top")
    composer = ConstraintComposer(design, mode)
    tr = composer.transform(MutSpec(module=mut_module, path=mut_path))

    full = synthesize(design)
    sim_full = LogicSimulator(full)
    sim_small = LogicSimulator(tr.netlist)
    small_pis = {tr.netlist.net_name(pi) for pi in tr.netlist.pis}
    full_pis = {full.net_name(pi) for pi in full.pis}
    assert small_pis <= full_pis
    small_pos = {name for _, name in tr.netlist.po_pairs}

    rng = random.Random(seed ^ 0xABCDEF)
    for _ in range(6):
        bits = {name: rng.randint(0, 1) for name in full_pis}
        out_full = sim_full.step_scalar(bits)
        out_small = sim_small.step_scalar(
            {k: v for k, v in bits.items() if k in small_pis}
        )
        for name in small_pos:
            assert out_small[name] == out_full[name], (name, seed, mode)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_conventional_is_superset_of_compose(seed):
    src, mut_module, mut_path = random_design(seed)
    design = Design(parse_source(src), top="top")
    spec = MutSpec(module=mut_module, path=mut_path)
    comp = ConstraintComposer(design, ExtractionMode.COMPOSE).extract(spec)
    conv = ConstraintComposer(
        design, ExtractionMode.CONVENTIONAL
    ).extract(spec)
    assert comp.chip_inputs <= conv.chip_inputs
    assert comp.chip_outputs <= conv.chip_outputs
    for name, marks in comp.marks.items():
        conv_marks = conv.marks.get(name)
        if conv_marks is None:
            continue
        if conv_marks.whole:
            continue
        assert marks.assigns <= conv_marks.assigns, name


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_emitted_constraints_reparse_and_resynthesize(seed):
    src, mut_module, mut_path = random_design(seed)
    design = Design(parse_source(src), top="top")
    composer = ConstraintComposer(design, ExtractionMode.COMPOSE)
    tr = composer.transform(MutSpec(module=mut_module, path=mut_path))
    re_design = Design(parse_source(tr.verilog), top="top")
    re_netlist = synthesize(re_design)
    assert re_netlist.gate_count() == tr.netlist.gate_count()
    assert len(re_netlist.dffs()) == len(tr.netlist.dffs())
