"""Tests for cross-module connectivity resolution."""

import pytest

from repro.hierarchy.connectivity import (
    instance_port_map,
    port_connection_signals,
    signal_instance_sinks,
    signal_instance_sources,
)
from repro.verilog.parser import parse_source


SRC = """
module child(input i1, input [3:0] i2, output o1, output [3:0] o2);
  assign o1 = i1;
  assign o2 = i2;
endmodule

module top(input a, input [3:0] bus, output y, output [3:0] wide);
  child u_named(.i1(a), .i2(bus), .o1(y), .o2(wide));
endmodule

module top_pos(input a, input [3:0] bus, output y, output [3:0] wide);
  child u_pos(a, bus, y, wide);
endmodule

module top_partial(input a, output y);
  child u_part(.i1(a), .o1(y), .i2(), .o2());
endmodule
"""


def modules():
    src = parse_source(SRC)
    return {m.name: m for m in src.modules}


class TestInstancePortMap:
    def test_named(self):
        mods = modules()
        inst = mods["top"].instances[0]
        pmap = instance_port_map(mods["child"], inst)
        assert pmap["i1"].signals() == {"a"}
        assert pmap["o2"].signals() == {"wide"}

    def test_positional(self):
        mods = modules()
        inst = mods["top_pos"].instances[0]
        pmap = instance_port_map(mods["child"], inst)
        assert pmap["i1"].signals() == {"a"}
        assert pmap["i2"].signals() == {"bus"}

    def test_unconnected(self):
        mods = modules()
        inst = mods["top_partial"].instances[0]
        pmap = instance_port_map(mods["child"], inst)
        assert pmap["i2"] is None
        assert pmap["o2"] is None

    def test_unknown_port_rejected(self):
        src = parse_source("""
        module child(input i, output o); assign o = i; endmodule
        module top(input a, output y);
          child u(.nope(a), .o(y));
        endmodule
        """)
        mods = {m.name: m for m in src.modules}
        with pytest.raises(ValueError):
            instance_port_map(mods["child"], mods["top"].instances[0])

    def test_too_many_positional_rejected(self):
        src = parse_source("""
        module child(input i, output o); assign o = i; endmodule
        module top(input a, input b, output y);
          child u(a, y, b);
        endmodule
        """)
        mods = {m.name: m for m in src.modules}
        with pytest.raises(ValueError):
            instance_port_map(mods["child"], mods["top"].instances[0])


class TestSinksAndSources:
    def test_sinks(self):
        mods = modules()
        sinks = signal_instance_sinks(mods["top"], "a", mods)
        assert [(i.inst_name, p) for i, p in sinks] == [("u_named", "i1")]

    def test_sources(self):
        mods = modules()
        sources = signal_instance_sources(mods["top"], "y", mods)
        assert [(i.inst_name, p) for i, p in sources] == [("u_named", "o1")]

    def test_bus_connection(self):
        mods = modules()
        sinks = signal_instance_sinks(mods["top"], "bus", mods)
        assert [(i.inst_name, p) for i, p in sinks] == [("u_named", "i2")]

    def test_no_match(self):
        mods = modules()
        assert signal_instance_sinks(mods["top"], "y", mods) == []
        assert signal_instance_sources(mods["top"], "a", mods) == []

    def test_port_connection_signals(self):
        mods = modules()
        inst = mods["top"].instances[0]
        assert port_connection_signals(mods["child"], inst, "i2") == {"bus"}
        inst_part = mods["top_partial"].instances[0]
        assert port_connection_signals(mods["child"], inst_part, "i2") == set()
