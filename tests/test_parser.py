"""Unit tests for the Verilog parser."""

import pytest

from repro.verilog import ast
from repro.verilog.parser import ParseError, parse_source


def parse_module(body, header="module m(a, b); input a; output b;"):
    src = f"{header}\n{body}\nendmodule"
    return parse_source(src).module("m")


def parse_expr(text):
    mod = parse_module(f"assign b = {text};")
    return mod.assigns[-1].rhs


class TestModuleStructure:
    def test_empty_module(self):
        source = parse_source("module m(); endmodule")
        assert source.module_names() == ["m"]
        assert source.module("m").ports == []

    def test_module_without_port_list(self):
        source = parse_source("module m; endmodule")
        assert source.module("m").ports == []

    def test_ansi_ports(self):
        mod = parse_source(
            "module m(input [3:0] a, output reg b, inout c); endmodule"
        ).module("m")
        assert [p.direction for p in mod.ports] == ["input", "output", "inout"]
        assert mod.port("b").is_reg
        assert mod.port("a").range is not None
        assert mod.port_order == ["a", "b", "c"]

    def test_ansi_port_continuation(self):
        mod = parse_source(
            "module m(input a, b, output y); endmodule"
        ).module("m")
        assert [p.name for p in mod.inputs()] == ["a", "b"]
        assert [p.name for p in mod.outputs()] == ["y"]

    def test_non_ansi_ports_ordered_by_header(self):
        mod = parse_source(
            "module m(y, a); input a; output y; endmodule"
        ).module("m")
        assert [p.name for p in mod.ports] == ["y", "a"]

    def test_non_ansi_missing_direction_is_error(self):
        with pytest.raises(ParseError):
            parse_source("module m(a); endmodule")

    def test_multiple_modules(self):
        source = parse_source(
            "module a(); endmodule\nmodule b(); endmodule"
        )
        assert source.module_names() == ["a", "b"]

    def test_parameters(self):
        mod = parse_source(
            "module m #(parameter W = 8, parameter D = W * 2)(); endmodule"
        ).module("m")
        assert [p.name for p in mod.params] == ["W", "D"]

    def test_body_parameters_and_localparam(self):
        mod = parse_module("parameter P = 3; localparam Q = P + 1;")
        names = {(p.name, p.local) for p in mod.params}
        assert names == {("P", False), ("Q", True)}


class TestDeclarations:
    def test_wire_and_reg(self):
        mod = parse_module("wire [7:0] w; reg r1, r2;")
        kinds = {(n.name, n.kind) for n in mod.nets}
        assert kinds == {("w", "wire"), ("r1", "reg"), ("r2", "reg")}

    def test_integer(self):
        mod = parse_module("integer i;")
        assert mod.nets[0].kind == "integer"

    def test_wire_with_initializer_becomes_assign(self):
        mod = parse_module("wire w = a;")
        assert mod.nets[0].name == "w"
        assert len(mod.assigns) == 1
        assert mod.assigns[0].defined() == {"w"}

    def test_memory_rejected(self):
        with pytest.raises(ParseError):
            parse_module("reg [7:0] mem [0:15];")


class TestContinuousAssign:
    def test_simple(self):
        mod = parse_module("assign b = a;")
        assert mod.assigns[0].defined() == {"b"}
        assert mod.assigns[0].used() == {"a"}

    def test_multiple_in_one_statement(self):
        mod = parse_module("wire c; assign b = a, c = a;")
        assert len(mod.assigns) == 2

    def test_concat_lhs(self):
        mod = parse_module("wire c; assign {c, b} = a;")
        assert mod.assigns[0].defined() == {"b", "c"}


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + a * a")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_compare_over_logical(self):
        expr = parse_expr("a == a && a != a")
        assert expr.op == "&&"

    def test_parentheses(self):
        expr = parse_expr("(a + a) * a")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_ternary_nests_right(self):
        expr = parse_expr("a ? a : a ? a : a")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_false, ast.Ternary)

    def test_unary_reduction(self):
        expr = parse_expr("&a")
        assert isinstance(expr, ast.Unary) and expr.op == "&"

    def test_chained_unary(self):
        expr = parse_expr("~|a")
        assert isinstance(expr, ast.Unary) and expr.op == "~|"

    def test_bit_select(self):
        expr = parse_expr("a[3]")
        assert isinstance(expr, ast.BitSelect)

    def test_part_select(self):
        expr = parse_expr("a[7:4]")
        assert isinstance(expr, ast.PartSelect)
        assert expr.signals() == {"a"}

    def test_concat(self):
        expr = parse_expr("{a, a[0], 2'b01}")
        assert isinstance(expr, ast.Concat)
        assert len(expr.parts) == 3

    def test_replication(self):
        expr = parse_expr("{4{a}}")
        assert isinstance(expr, ast.Repeat)

    def test_number_width_and_base(self):
        expr = parse_expr("8'hA5")
        assert isinstance(expr, ast.Number)
        assert (expr.width, expr.value, expr.base) == (8, 0xA5, "h")

    def test_signals_of_complex_expr(self):
        expr = parse_expr("(x & y) | (z ? w : v)")
        assert expr.signals() == {"x", "y", "z", "w", "v"}

    def test_unexpected_token_in_expr(self):
        with pytest.raises(ParseError):
            parse_module("assign b = ;")


class TestAlwaysBlocks:
    def test_combinational_star(self):
        mod = parse_module("reg t; always @(*) t = a;", )
        always = mod.always_blocks[0]
        assert always.sensitivity == []
        assert not always.is_sequential

    def test_edge_sensitivity(self):
        mod = parse_module(
            "reg t; always @(posedge a or negedge b) t <= a;",
            header="module m(a, b); input a; input b;",
        )
        always = mod.always_blocks[0]
        assert always.is_sequential
        assert [(s.edge, s.signal) for s in always.sensitivity] == [
            ("posedge", "a"), ("negedge", "b")
        ]

    def test_level_sensitivity(self):
        mod = parse_module("reg t; always @(a) t = a;")
        assert mod.always_blocks[0].sensitivity[0].edge == "level"

    def test_blocking_vs_nonblocking(self):
        mod = parse_module(
            "reg t, u; always @(*) begin t = a; u <= a; end"
        )
        block = mod.always_blocks[0].body
        assert block.stmts[0].blocking
        assert not block.stmts[1].blocking

    def test_if_else_chain(self):
        mod = parse_module(
            "reg t; always @(*) if (a) t = 1'b0; "
            "else if (!a) t = 1'b1; else t = a;"
        )
        stmt = mod.always_blocks[0].body
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_stmt, ast.If)

    def test_case_with_default(self):
        mod = parse_module(
            "reg [1:0] t; always @(*) case (a) 1'b0: t = 2'd1; "
            "default: t = 2'd2; endcase"
        )
        case = mod.always_blocks[0].body
        assert isinstance(case, ast.Case)
        assert case.items[1].is_default

    def test_case_multiple_labels(self):
        mod = parse_module(
            "reg t; always @(*) case (a) 1'b0, 1'b1: t = a; endcase"
        )
        assert len(mod.always_blocks[0].body.items[0].labels) == 2

    def test_casez_wildcards(self):
        mod = parse_module(
            "reg t; wire [3:0] s; always @(*) casez (s) "
            "4'b1??0: t = 1'b1; default: t = 1'b0; endcase"
        )
        label = mod.always_blocks[0].body.items[0].labels[0]
        assert isinstance(label, ast.CaseLabelWild)
        assert label.bits == "1??0"

    def test_casex_x_digits(self):
        mod = parse_module(
            "reg t; wire [1:0] s; always @(*) casex (s) "
            "2'b1x: t = 1'b1; default: t = 1'b0; endcase"
        )
        label = mod.always_blocks[0].body.items[0].labels[0]
        assert label.bits == "1?"

    def test_x_digits_rejected_in_casez(self):
        with pytest.raises(ParseError):
            parse_module(
                "reg t; always @(*) casez (a) 1'bx: t = 1'b1; endcase"
            )

    def test_for_loop(self):
        mod = parse_module(
            "reg [3:0] t; integer i; always @(*) "
            "for (i = 0; i < 4; i = i + 1) t[i] = a;"
        )
        stmt = mod.always_blocks[0].body
        assert isinstance(stmt, ast.For)

    def test_named_block(self):
        mod = parse_module("reg t; always @(*) begin : blk t = a; end")
        assert isinstance(mod.always_blocks[0].body, ast.Block)


class TestInstancesAndGates:
    HEADER = "module m(a, y); input a; output y;"

    def test_named_connections(self):
        src = """
        module child(input i, output o); assign o = i; endmodule
        module m(input a, output y);
          child u1(.i(a), .o(y));
        endmodule
        """
        mod = parse_source(src).module("m")
        inst = mod.instances[0]
        assert inst.module_name == "child"
        assert inst.connections[0].name == "i"

    def test_positional_connections(self):
        src = """
        module child(input i, output o); assign o = i; endmodule
        module m(input a, output y);
          child u1(a, y);
        endmodule
        """
        inst = parse_source(src).module("m").instances[0]
        assert all(c.name is None for c in inst.connections)

    def test_unconnected_port(self):
        src = """
        module child(input i, output o); assign o = i; endmodule
        module m(input a, output y);
          child u1(.i(a), .o());
          assign y = a;
        endmodule
        """
        inst = parse_source(src).module("m").instances[0]
        assert inst.connections[1].expr is None

    def test_parameter_override(self):
        src = """
        module child #(parameter W = 1)(input i, output o);
          assign o = i;
        endmodule
        module m(input a, output y);
          child #(.W(4)) u1(.i(a), .o(y));
        endmodule
        """
        inst = parse_source(src).module("m").instances[0]
        assert inst.param_overrides[0][0] == "W"

    def test_gate_primitives(self):
        mod = parse_module(
            "wire w1, w2; and g1(w1, a, b); not (w2, w1);",
            header="module m(a, b, y); input a; input b; output y;",
        )
        assert mod.gates[0].gate_type == "and"
        assert mod.gates[0].inst_name == "g1"
        assert mod.gates[1].inst_name is None

    def test_gate_needs_two_terminals(self):
        with pytest.raises(ParseError):
            parse_module("wire w; and g(w);")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("module m() endmodule")

    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            parse_source("module m();")

    def test_error_reports_line(self):
        try:
            parse_source("module m();\n  wire w\nendmodule")
        except ParseError as err:
            assert err.line >= 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
