"""Optimizer tests: size reductions and functional equivalence.

The key property: optimization must never change circuit behaviour.  We
check it by simulating random vectors through the raw and optimized netlists
of several designs (including sequential ones, cycle by cycle).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.simulator import LogicSimulator
from repro.designs import small_designs, arm2_source
from repro.hierarchy import Design
from repro.synth.elaborate import Elaborator
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.synth.opt import constant_propagate, optimize, remove_dead, strash
from repro.verilog.parser import parse_source


def raw_netlist(src, top=None):
    return Elaborator(Design(parse_source(src), top=top)).synthesize()


def simulate_sequence(netlist, vectors):
    """Run a vector sequence; returns per-cycle (po_name -> tri-state bit)."""
    sim = LogicSimulator(netlist)
    results = []
    for vec in vectors:
        values = sim.step({
            pi: ((1, 0) if vec.get(netlist.net_name(pi), 0) else (0, 1))
            for pi in netlist.pis
        })
        row = {}
        for po, name in netlist.po_pairs:
            ones, zeros = values.get(po, (0, 0))
            row[name] = 1 if ones else (0 if zeros else None)
        results.append(row)
    return results


def assert_equivalent(raw, opt, cycles=24, seed=7):
    rng = random.Random(seed)
    names = [raw.net_name(pi) for pi in raw.pis]
    vectors = [
        {name: rng.randint(0, 1) for name in names} for _ in range(cycles)
    ]
    assert simulate_sequence(raw, vectors) == simulate_sequence(opt, vectors)


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(small_designs()))
    def test_small_designs_equivalent(self, name):
        raw = raw_netlist(small_designs()[name])
        opt = optimize(raw)
        assert_equivalent(raw, opt)
        assert opt.gate_count(include_buffers=True) <= raw.gate_count(
            include_buffers=True
        )

    def test_arm2_equivalent_sampled(self):
        raw = raw_netlist(arm2_source(), top="arm")
        opt = optimize(raw)
        assert_equivalent(raw, opt, cycles=12)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_random_expression_circuits(self, seed):
        rng = random.Random(seed)
        ops = ["+", "-", "&", "|", "^"]
        expr = "a"
        for _ in range(rng.randint(1, 4)):
            expr = f"({expr} {rng.choice(ops)} {rng.choice(['a', 'b', 'c'])})"
        src = f"""
        module m(input [3:0] a, input [3:0] b, input [3:0] c,
                 output [3:0] y);
          assign y = {expr};
        endmodule
        """
        raw = raw_netlist(src)
        opt = optimize(raw)
        assert_equivalent(raw, opt, cycles=16, seed=seed)


class TestConstantPropagation:
    def test_tied_inputs_fold_away(self):
        src = """
        module m(input a, output y);
          wire t;
          assign t = a & 1'b0;
          assign y = t | a;
        endmodule
        """
        opt = optimize(raw_netlist(src))
        # y == a: everything folds to a wire.
        assert opt.gate_count(include_buffers=True) == 0
        assert opt.pos[0] == opt.pis[0]

    def test_constant_output(self):
        src = """
        module m(input a, output y);
          assign y = a ^ a;
        endmodule
        """
        opt = optimize(raw_netlist(src))
        assert opt.pos[0] == CONST0

    def test_nand_nor_folding(self):
        nl = Netlist()
        a = nl.add_pi("a")
        n1 = nl.add_gate(GateType.NAND, (a, CONST1))
        n2 = nl.add_gate(GateType.NOR, (n1, CONST0))
        nl.add_po(n2, "y")
        opt = optimize(nl)
        # NAND(a,1) = ~a; NOR(~a,0) = a.
        assert opt.pos[0] == a

    def test_xor_parity_folding(self):
        nl = Netlist()
        a = nl.add_pi("a")
        x = nl.add_gate(GateType.XOR, (a, a, CONST1))
        nl.add_po(x, "y")
        opt = constant_propagate(nl)
        # a^a^1 = 1.
        assert opt.pos[0] == CONST1


class TestStrash:
    def test_duplicate_gates_merged(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        g1 = nl.add_gate(GateType.AND, (a, b))
        g2 = nl.add_gate(GateType.AND, (b, a))  # commuted duplicate
        y = nl.add_gate(GateType.XOR, (g1, g2))
        nl.add_po(y, "y")
        opt = optimize(nl)
        # XOR(x, x) == 0 after merging.
        assert opt.pos[0] == CONST0

    def test_noncommutative_not_merged_blindly(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        g1 = nl.add_gate(GateType.AND, (a, b))
        g2 = nl.add_gate(GateType.OR, (a, b))
        y = nl.add_gate(GateType.XOR, (g1, g2))
        nl.add_po(y, "y")
        opt = strash(nl)
        assert len(opt.gates) == 3


class TestDeadCodeRemoval:
    def test_unreachable_logic_deleted(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        keep = nl.add_gate(GateType.AND, (a, b))
        nl.add_gate(GateType.OR, (a, b))  # dead
        nl.add_po(keep, "y")
        opt = remove_dead(nl)
        assert len(opt.gates) == 1

    def test_unobserved_flop_deleted(self):
        src = """
        module m(input clk, input d, output q);
          reg live;
          reg dead;
          always @(posedge clk) live <= d;
          always @(posedge clk) dead <= ~d;
          assign q = live;
        endmodule
        """
        opt = optimize(raw_netlist(src))
        assert len(opt.dffs()) == 1

    def test_feedback_flop_kept_when_observed(self):
        src = """
        module m(input clk, input rst, output [1:0] q);
          reg [1:0] cnt;
          always @(posedge clk)
            if (rst) cnt <= 2'd0;
            else cnt <= cnt + 2'd1;
          assign q = cnt;
        endmodule
        """
        opt = optimize(raw_netlist(src))
        assert len(opt.dffs()) == 2


class TestRegionsPreserved:
    def test_regions_survive_optimization(self):
        src = """
        module leaf(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire t;
          leaf u1(.i(a), .o(t));
          assign y = t;
        endmodule
        """
        design = Design(parse_source(src))
        raw = Elaborator(design).synthesize()
        opt = optimize(raw)
        regions = getattr(opt, "regions", {})
        assert any(r.startswith("u1.") for r in regions.values())
