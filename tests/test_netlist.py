"""Unit tests for the gate-level netlist IR."""

import pytest

from repro.synth.netlist import CONST0, CONST1, GateType, Netlist, NetlistError


def build_simple():
    nl = Netlist("t")
    a = nl.add_pi("a")
    b = nl.add_pi("b")
    ab = nl.add_gate(GateType.AND, (a, b), name="ab")
    nl.add_po(ab, "y")
    return nl, a, b, ab


class TestConstruction:
    def test_constants_reserved(self):
        nl = Netlist()
        assert nl.net_name(CONST0) == "const0"
        assert nl.net_name(CONST1) == "const1"

    def test_add_gate_returns_fresh_net(self):
        nl, a, b, ab = build_simple()
        assert ab not in (a, b)
        assert nl.driver(ab).type is GateType.AND

    def test_multiple_drivers_rejected(self):
        nl, a, b, ab = build_simple()
        with pytest.raises(NetlistError):
            nl.add_gate_to(GateType.OR, ab, (a, b))

    def test_cannot_drive_constant(self):
        nl, a, b, _ = build_simple()
        with pytest.raises(NetlistError):
            nl.add_gate_to(GateType.AND, CONST0, (a, b))

    def test_unary_gate_arity_checked(self):
        nl, a, b, _ = build_simple()
        with pytest.raises(NetlistError):
            nl.add_gate(GateType.NOT, (a, b))

    def test_gate_needs_inputs(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.add_gate(GateType.AND, ())

    def test_po_name_preserved(self):
        nl, *_ = build_simple()
        assert nl.po_pairs[0][1] == "y"

    def test_duplicate_po_net_keeps_both_names(self):
        nl, a, b, ab = build_simple()
        nl.add_po(ab, "y2")
        names = [name for _, name in nl.po_pairs]
        assert names == ["y", "y2"]


class TestQueries:
    def test_gate_count_excludes_buffers_and_dffs(self):
        nl = Netlist()
        a = nl.add_pi("a")
        buf = nl.add_gate(GateType.BUF, (a,))
        inv = nl.add_gate(GateType.NOT, (buf,))
        q = nl.add_gate(GateType.DFF, (inv,))
        nl.add_po(q, "q")
        assert nl.gate_count() == 1
        assert nl.gate_count(include_buffers=True) == 2
        assert len(nl.dffs()) == 1
        assert len(nl.combinational_gates()) == 2

    def test_fanouts(self):
        nl, a, b, ab = build_simple()
        extra = nl.add_gate(GateType.OR, (a, ab))
        fan = nl.fanouts()
        assert len(fan[a]) == 2
        assert len(fan[ab]) == 1
        assert extra not in fan

    def test_clone_is_independent(self):
        nl, a, b, ab = build_simple()
        other = nl.clone()
        other.add_gate(GateType.NOT, (a,))
        assert len(other.gates) == len(nl.gates) + 1
        assert other.po_pairs == nl.po_pairs


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        nl = Netlist()
        a = nl.add_pi("a")
        n1 = nl.add_gate(GateType.NOT, (a,))
        n2 = nl.add_gate(GateType.AND, (a, n1))
        nl.add_po(n2, "y")
        order = nl.topological_order()
        assert order.index(nl.driver(n1)) < order.index(nl.driver(n2))

    def test_dff_breaks_cycles(self):
        nl = Netlist()
        a = nl.add_pi("a")
        q = nl.new_net("q")
        d = nl.add_gate(GateType.AND, (a, q))
        nl.add_gate_to(GateType.DFF, q, (d,))
        nl.add_po(q, "q")
        order = nl.topological_order()
        assert [g.type for g in order] == [GateType.AND]

    def test_combinational_cycle_detected(self):
        nl = Netlist()
        a = nl.add_pi("a")
        x = nl.new_net("x")
        y = nl.add_gate(GateType.AND, (a, x))
        nl.add_gate_to(GateType.OR, x, (y, a))
        nl.add_po(x, "x")
        with pytest.raises(NetlistError):
            nl.topological_order()

    def test_gates_outside_po_cone_still_ordered(self):
        nl, a, b, ab = build_simple()
        orphan = nl.add_gate(GateType.XOR, (a, b))
        order = nl.topological_order()
        assert nl.driver(orphan) in order


class TestValidate:
    def test_valid_netlist(self):
        nl, *_ = build_simple()
        nl.validate()

    def test_floating_read_rejected(self):
        nl = Netlist()
        a = nl.add_pi("a")
        ghost = nl.new_net("ghost")
        y = nl.add_gate(GateType.AND, (a, ghost))
        nl.add_po(y, "y")
        with pytest.raises(NetlistError):
            nl.validate()

    def test_floating_po_rejected(self):
        nl = Netlist()
        nl.add_pi("a")
        ghost = nl.new_net("ghost")
        nl.add_po(ghost, "y")
        with pytest.raises(NetlistError):
            nl.validate()
