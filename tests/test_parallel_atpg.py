"""Fault-parallel PODEM: equivalence, gating, and crash recovery.

The contract under test is the one docs/performance.md promises: at any
worker count the parallel engine produces *bit-identical* detected /
untestable / aborted sets, coverage, and tests to a serial run, because
workers only speculate and the parent commits in serial fault order.
These tests force the fork pool past its small-design and single-core
gates (the CI box may have one core) via the ``REPRO_PARALLEL_MIN_*``
environment knobs, which are themselves under test here.
"""

import os
import signal

import pytest

import repro.atpg.parallel as parallel_mod
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.faults import build_fault_list
from repro.atpg.fault_sim import (FaultSimulator, available_cores,
                                  parallel_detected_faults,
                                  should_parallelize)
from repro.designs import counter_source
from repro.hierarchy import Design
from repro.obs import get_registry
from repro.synth import synthesize
from repro.verilog.parser import parse_source

from tests.test_compiled import random_netlist

#: Deterministic across processes: the high per-fault time limit means the
#: backtrack limit always binds first (a CPU-time bound could classify a
#: borderline fault differently between two runs, even two serial ones).
_OPTS = dict(max_frames=2, frame_schedule=(1, 2), backtrack_limit=30,
             fault_time_limit=10.0, random_sequences=2,
             random_sequence_length=8, seed=2002)


@pytest.fixture
def force_parallel(monkeypatch):
    """Lower every pool gate so small workloads fork even on one core."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_FAULTS", "1")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "1")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_CORES", "1")


def _run(netlist, jobs, **overrides):
    opts = dict(_OPTS, **overrides)
    engine = AtpgEngine(netlist, AtpgOptions(jobs=jobs, **opts))
    report = engine.run()
    return engine, report


def _assert_identical(serial, parallel):
    s_eng, s_rep = serial
    p_eng, p_rep = parallel
    assert p_eng.detected_faults == s_eng.detected_faults
    assert p_eng.untestable_faults == s_eng.untestable_faults
    assert p_eng.aborted_faults == s_eng.aborted_faults
    assert p_eng.tests == s_eng.tests
    assert p_rep.coverage_percent == s_rep.coverage_percent
    assert p_rep.efficiency_percent == s_rep.efficiency_percent
    assert p_rep.num_vectors == s_rep.num_vectors
    assert p_rep.detected == s_rep.detected


class TestShouldParallelize:
    def test_one_worker_never_forks(self):
        assert not should_parallelize(1, 10**6, 10**6)
        assert not should_parallelize(0, 10**6, 10**6)

    def test_small_workloads_stay_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_CORES", "1")
        assert not should_parallelize(4, 100, 10**6)
        assert not should_parallelize(4, 10**6, 100)

    def test_single_core_hosts_stay_serial(self, monkeypatch):
        import repro.atpg.fault_sim as fs

        monkeypatch.setattr(fs, "available_cores", lambda: 1)
        assert not should_parallelize(4, 10**6, 10**6)
        monkeypatch.setattr(fs, "available_cores", lambda: 8)
        assert should_parallelize(4, 10**6, 10**6)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_CORES", "1")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_FAULTS", "10")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_GATES", "10")
        assert should_parallelize(2, 10, 10)
        monkeypatch.setenv("REPRO_PARALLEL_MIN_FAULTS", "11")
        assert not should_parallelize(2, 10, 10)
        # Garbage values fall back to the defaults instead of raising.
        monkeypatch.setenv("REPRO_PARALLEL_MIN_FAULTS", "lots")
        assert not should_parallelize(2, 10, 10)

    def test_available_cores_positive(self):
        assert available_cores() >= 1


class TestEngineGating:
    def test_small_design_stays_serial_despite_jobs(self):
        """The arm_alu 0.61x regression, as a unit test: designs under
        the thresholds must ignore --jobs and run the serial loop."""
        nl = synthesize(Design(parse_source(counter_source())))
        engine, report = _run(nl, jobs=4)
        assert engine.parallel_workers == 0
        assert report.total_faults > 0

    def test_total_time_limit_forces_serial(self, force_parallel):
        nl = random_netlist(7, num_gates=60)
        engine, _ = _run(nl, jobs=2, total_time_limit=300.0)
        assert engine.parallel_workers == 0

    def test_forced_pool_reports_workers(self, force_parallel):
        nl = random_netlist(7, num_gates=60)
        engine, _ = _run(nl, jobs=2)
        assert engine.parallel_workers == 2


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_random_netlists(self, force_parallel, seed):
        nl = random_netlist(seed, num_pis=6, num_dffs=4, num_gates=80)
        serial = _run(nl, jobs=1)
        par = _run(nl, jobs=2)
        assert par[0].parallel_workers == 2
        _assert_identical(serial, par)

    def test_three_workers_more_than_shards_ok(self, force_parallel):
        # More workers than shards: the surplus workers retire at their
        # first dispatch without ever receiving a shard.
        nl = random_netlist(5, num_gates=30)
        serial = _run(nl, jobs=1)
        par = _run(nl, jobs=3)
        _assert_identical(serial, par)

    def test_counters_booked(self, force_parallel):
        nl = random_netlist(13, num_gates=80)
        get_registry().reset()
        engine, _ = _run(nl, jobs=2)
        assert engine.parallel_workers == 2
        snap = get_registry().snapshot()
        assert snap["atpg.parallel.runs"]["value"] == 1
        assert snap["atpg.parallel.shards"]["value"] >= 1
        assert snap["atpg.parallel.worker_faults"]["value"] >= 1
        assert snap["atpg.parallel.workers"]["value"] == 2


class TestCrashRecovery:
    def test_killed_worker_shard_is_recovered(self, force_parallel,
                                              monkeypatch):
        """SIGKILL one of two workers at startup: its shard must be
        re-queued (or re-generated in the parent), never lost, and the
        run must still match serial bit-for-bit."""
        nl = random_netlist(31, num_pis=6, num_dffs=4, num_gates=100)
        serial = _run(nl, jobs=1)

        def kill_first(procs):
            os.kill(procs[0].pid, signal.SIGKILL)
            procs[0].join(timeout=10.0)

        monkeypatch.setattr(parallel_mod, "_TEST_ON_WORKERS_STARTED",
                            kill_first)
        get_registry().reset()
        par = _run(nl, jobs=2)
        _assert_identical(serial, par)
        snap = get_registry().snapshot()
        assert snap["atpg.parallel.shards_requeued"]["value"] >= 1

    def test_all_workers_killed_drains_in_parent(self, force_parallel,
                                                 monkeypatch):
        nl = random_netlist(37, num_gates=60)
        serial = _run(nl, jobs=1)

        def kill_all(procs):
            for proc in procs:
                os.kill(proc.pid, signal.SIGKILL)
            for proc in procs:
                proc.join(timeout=10.0)

        monkeypatch.setattr(parallel_mod, "_TEST_ON_WORKERS_STARTED",
                            kill_all)
        par = _run(nl, jobs=2)
        _assert_identical(serial, par)


class TestParallelFaultSim:
    def test_union_matches_serial(self, force_parallel):
        nl = random_netlist(41, num_pis=6, num_dffs=4, num_gates=80)
        faults = build_fault_list(nl)
        import random as random_lib

        rng = random_lib.Random(9)
        vectors = [{pi: rng.randint(0, 1) for pi in nl.pis}
                   for _ in range(12)]
        serial = FaultSimulator(nl, backend="compiled").detected_faults(
            vectors, faults)
        par = parallel_detected_faults(nl, vectors, faults, jobs=2,
                                       backend="compiled")
        assert par == serial

    def test_serial_fallback_counted(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MIN_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL_MIN_GATES", raising=False)
        nl = random_netlist(43, num_gates=30)
        faults = build_fault_list(nl)
        vectors = [{pi: 1 for pi in nl.pis}]
        get_registry().reset()
        par = parallel_detected_faults(nl, vectors, faults, jobs=4)
        serial = FaultSimulator(nl).detected_faults(vectors, faults)
        assert par == serial
        snap = get_registry().snapshot()
        assert snap["fault_sim.parallel.serial_fallbacks"]["value"] == 1
