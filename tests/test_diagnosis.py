"""Fault diagnosis tests."""

import pytest

from repro.atpg.diagnosis import Diagnoser
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.faults import build_fault_list
from repro.atpg.vectors import TestSet
from repro.designs import adder_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


@pytest.fixture(scope="module")
def adder_setup():
    nl = synthesize(Design(parse_source(adder_source())))
    engine = AtpgEngine(nl, AtpgOptions(max_frames=1))
    engine.run()
    ts = TestSet.from_engine(engine, nl)
    return nl, ts, Diagnoser(nl, ts)


class TestDiagnosis:
    def test_true_fault_ranked_first_class(self, adder_setup):
        nl, ts, diag = adder_setup
        faults = build_fault_list(nl)
        hits = 0
        for fault in faults[::5]:
            observed = diag.observe(fault)
            if not any(observed):
                continue  # undetected fault: no syndrome to diagnose
            candidates = diag.diagnose(observed,
                                       max_candidates=len(faults))
            best_score = candidates[0].score()
            top_equivalents = [c.fault for c in candidates
                               if c.score() == best_score]
            assert fault in top_equivalents
            hits += 1
        assert hits > 5

    def test_perfect_candidate_flagged(self, adder_setup):
        nl, ts, diag = adder_setup
        fault = build_fault_list(nl)[0]
        observed = diag.observe(fault)
        if any(observed):
            best = diag.diagnose(observed)[0]
            assert best.perfect

    def test_all_pass_syndrome_gives_no_candidates(self, adder_setup):
        nl, ts, diag = adder_setup
        observed = [False] * len(ts.tests)
        assert diag.diagnose(observed) == []

    def test_bad_syndrome_length_rejected(self, adder_setup):
        _, _, diag = adder_setup
        with pytest.raises(ValueError):
            diag.diagnose([True])

    def test_resolution_counts_equivalents(self, adder_setup):
        nl, ts, diag = adder_setup
        fault = build_fault_list(nl)[2]
        res = diag.resolution(fault)
        assert res >= 1

    def test_noisy_syndrome_still_ranks_close(self, adder_setup):
        nl, ts, diag = adder_setup
        faults = build_fault_list(nl)
        fault = faults[4]
        observed = list(diag.observe(fault))
        if sum(observed) >= 2:
            # Flip one failing test to passing (tester noise).
            observed[observed.index(True)] = False
            candidates = diag.diagnose(observed, max_candidates=len(faults))
            ranked_faults = [c.fault for c in candidates]
            assert fault in ranked_faults[: max(5, len(faults) // 4)]

    def test_sequential_design(self):
        nl = synthesize(Design(parse_source(fsm_source())))
        engine = AtpgEngine(
            nl, AtpgOptions(max_frames=8, backtrack_limit=4000,
                            fault_time_limit=5.0)
        )
        engine.run()
        ts = TestSet.from_engine(engine, nl)
        diag = Diagnoser(nl, ts)
        fault = build_fault_list(nl)[1]
        observed = diag.observe(fault)
        if any(observed):
            best_score = diag.diagnose(observed)[0].score()
            tied = [c.fault for c in diag.diagnose(observed)
                    if c.score() == best_score]
            assert fault in tied
