"""Journal durability and the admission controller's queue invariants."""

import asyncio
import json

import pytest

from repro.obs import wall_clock
from repro.serve.admission import CLOSED, AdmissionController, QueueFull
from repro.serve.journal import JobJournal, _sequence_of
from repro.serve.protocol import FAILED, Job, JobSpec

TINY = "module t(input a, output y); assign y = ~a; endmodule\n"


def _job(seq: int, deadline_s=None, submitted_at=None) -> Job:
    spec = JobSpec(op="lint", source=TINY,
                   deadline_s=deadline_s).validate()
    return Job(job_id=f"job-{seq}-{spec.fingerprint()[:8]}", spec=spec,
               fingerprint=spec.fingerprint(),
               submitted_at=wall_clock() if submitted_at is None
               else submitted_at)


class TestJournal:
    def test_disabled_journal_is_inert(self, tmp_path):
        journal = JobJournal(None)
        journal.append("submitted", id="job-1-x")
        assert journal.enabled is False
        assert journal.replay() == ([], 1)

    def test_replay_returns_unfinished_submissions(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        journal.append("submitted", id="job-1-aa", spec={"op": "lint"})
        journal.append("submitted", id="job-2-bb", spec={"op": "atpg"})
        journal.append("started", id="job-1-aa")
        journal.append("done", id="job-1-aa")
        journal.append("submitted", id="job-3-cc", spec={"op": "lint"})
        journal.append("started", id="job-3-cc")  # died while running
        journal.close()

        survivors, next_seq = JobJournal(path).replay()
        assert [record["id"] for record in survivors] \
            == ["job-2-bb", "job-3-cc"]
        assert next_seq == 4  # ids must not collide with journaled ones

    def test_replay_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"event": "submitted", "id": "job-1-aa",
                        "spec": {"op": "lint"}}) + "\n"
            + '{"event":"submitted","id":"job-2-bb","sp')  # torn write
        survivors, next_seq = JobJournal(str(path)).replay()
        assert [record["id"] for record in survivors] == ["job-1-aa"]
        assert next_seq == 2

    def test_replay_compacts_file_to_survivors(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = JobJournal(path)
        for seq in (1, 2, 3):
            journal.append("submitted", id=f"job-{seq}-xx", spec={})
        journal.append("failed", id="job-2-xx")
        journal.close()
        JobJournal(path).replay()

        lines = [json.loads(line) for line in
                 open(path, encoding="utf-8")]
        assert [record["id"] for record in lines] \
            == ["job-1-xx", "job-3-xx"]
        assert all(record["event"] == "submitted" for record in lines)

    def test_replay_of_missing_file(self, tmp_path):
        journal = JobJournal(str(tmp_path / "absent.jsonl"))
        assert journal.replay() == ([], 1)

    def test_sequence_parse(self):
        assert _sequence_of("job-17-abcd1234") == 17
        assert _sequence_of("weird") == 0


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_fifo_order(self):
        async def scenario():
            controller = AdmissionController(depth=4, workers=1)
            first, second = _job(1), _job(2)
            controller.admit(first)
            controller.admit(second)
            assert len(controller) == 2
            assert await controller.next_job() is first
            assert await controller.next_job() is second

        run(scenario())

    def test_depth_bound_raises_queue_full(self):
        async def scenario():
            controller = AdmissionController(depth=2, workers=1)
            controller.admit(_job(1))
            controller.admit(_job(2))
            with pytest.raises(QueueFull) as exc:
                controller.admit(_job(3))
            assert exc.value.retry_after >= 1
            # forced admission (journal resume) bypasses the bound
            controller.admit(_job(4), force=True)
            assert len(controller) == 3

        run(scenario())

    def test_retry_after_tracks_ewma_and_clamps(self):
        async def scenario():
            controller = AdmissionController(depth=8, workers=2)
            controller.observe_job_seconds(40.0)
            controller.admit(_job(1))
            controller.admit(_job(2))
            hint = controller.retry_after_hint()
            assert 1 <= hint <= 300
            for _ in range(10):
                controller.observe_job_seconds(100000.0)
            assert controller.retry_after_hint() == 300

        run(scenario())

    def test_expired_job_failed_not_dispatched(self):
        async def scenario():
            expired_seen = []
            controller = AdmissionController(
                depth=4, workers=1, on_expired=expired_seen.append)
            stale = _job(1, deadline_s=0.001,
                         submitted_at=wall_clock() - 10.0)
            fresh = _job(2)
            controller.admit(stale)
            controller.admit(fresh)
            assert await controller.next_job() is fresh
            assert stale.status == FAILED
            assert "deadline" in stale.error
            assert expired_seen == [stale]

        run(scenario())

    def test_close_wakes_dispatcher_with_closed(self):
        async def scenario():
            controller = AdmissionController(depth=4, workers=1)
            waiter = asyncio.ensure_future(controller.next_job())
            await asyncio.sleep(0)  # let the dispatcher block on the queue
            controller.close()
            assert await waiter is CLOSED
            with pytest.raises(RuntimeError, match="draining"):
                controller.admit(_job(1))

        run(scenario())

    def test_close_without_keep_backlog_abandons_queue(self):
        async def scenario():
            controller = AdmissionController(depth=4, workers=1)
            job = _job(1)
            controller.admit(job)
            backlog = controller.close(keep_backlog=False)
            assert backlog == [job]
            assert len(controller) == 0
            assert await controller.next_job() is CLOSED

        run(scenario())

    def test_close_with_keep_backlog_still_dispatches(self):
        async def scenario():
            controller = AdmissionController(depth=4, workers=1)
            job = _job(1)
            controller.admit(job)
            controller.close(keep_backlog=True)
            assert await controller.next_job() is job
            assert await controller.next_job() is CLOSED

        run(scenario())

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(depth=0, workers=1)
