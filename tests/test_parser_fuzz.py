"""Grammar-driven fuzzing of the parser/writer round trip.

Random expressions and statements are generated from the supported grammar,
parsed, written back out, and re-parsed: the second rendering must be a
fixpoint, and the synthesized circuits must be behaviourally identical.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.hierarchy import Design
from repro.verilog.parser import parse_source
from repro.verilog.writer import write_source


def random_expr(rng, depth, signals):
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.6:
            return rng.choice(signals)
        if choice < 0.8:
            return f"{rng.randint(1, 8)}'d{rng.randint(0, 255) % 256}"
        sig = rng.choice(signals)
        return f"{sig}[{rng.randint(0, 3)}]"
    kind = rng.random()
    if kind < 0.55:
        op = rng.choice(["+", "-", "&", "|", "^", "==", "!=", "<", ">=",
                         "&&", "||", "<<", ">>"])
        left = random_expr(rng, depth - 1, signals)
        right = random_expr(rng, depth - 1, signals)
        return f"({left} {op} {right})"
    if kind < 0.75:
        op = rng.choice(["~", "!", "&", "|", "^", "~&", "~|"])
        return f"{op}({random_expr(rng, depth - 1, signals)})"
    if kind < 0.9:
        cond = random_expr(rng, depth - 1, signals)
        a = random_expr(rng, depth - 1, signals)
        b = random_expr(rng, depth - 1, signals)
        return f"(({cond}) ? ({a}) : ({b}))"
    parts = [random_expr(rng, depth - 1, signals)
             for _ in range(rng.randint(2, 3))]
    return "{" + ", ".join(parts) + "}"


def random_module(seed):
    rng = random.Random(seed)
    signals = ["a", "b", "c"]
    lines = [
        "module fuzz(input [3:0] a, input [3:0] b, input [3:0] c,",
        "            output [3:0] y0, output [3:0] y1, output reg [3:0] y2);",
    ]
    lines.append(f"  assign y0 = {random_expr(rng, 3, signals)};")
    lines.append(f"  assign y1 = {random_expr(rng, 2, signals)};")
    lines.append("  always @(*) begin")
    lines.append(f"    y2 = {random_expr(rng, 2, signals)};")
    lines.append(f"    if ({random_expr(rng, 1, signals)})")
    lines.append(f"      y2 = {random_expr(rng, 2, signals)};")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_roundtrip_fixpoint(seed):
    src = random_module(seed)
    first = write_source(parse_source(src))
    second = write_source(parse_source(first))
    assert first == second


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 9))
def test_roundtrip_behavioural(seed):
    from repro.synth import synthesize
    from .test_integration import random_equivalent

    src = random_module(seed)
    design_a = Design(parse_source(src))
    design_b = Design(parse_source(write_source(design_a.source)))
    random_equivalent(synthesize(design_a), synthesize(design_b), cycles=8,
                      seed=seed & 0xFFFF)
