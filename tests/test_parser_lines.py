"""Every parsed AST node must carry a real source line number.

Lint diagnostics (and the testability report's traces) point users at source
lines; a node silently defaulting to ``line=0`` turns into a finding with no
location.  This walks every dataclass node reachable from a parse and
asserts ``line > 0`` — on a kitchen-sink source covering each construct the
parser supports, and on both bundled designs.
"""

import dataclasses

import pytest

from repro.designs import arm2_source, filterchip_source
from repro.verilog.parser import parse_source
from repro.verilog.preprocess import preprocess

KITCHEN_SINK = """
module kitchen #(parameter W = 4) (
  input clk,
  input rst_n,
  input [W-1:0] a,
  input [W-1:0] b,
  inout [1:0] pad,
  output reg [W-1:0] q,
  output [7:0] wide
);
  parameter DEPTH = 3;
  localparam HALF = W / 2;
  wire [W-1:0] sum;
  wire carry;
  wire carry2;
  reg [W-1:0] acc;
  integer i;
  assign {carry, sum} = a + b;
  assign wide = {{2{a[1:0]}}, sum};
  and g0 (carry2, a[0], b[0]);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      q <= {W{1'b0}};
    else begin
      for (i = 0; i < DEPTH; i = i + 1)
        acc = acc ^ (a >> i);
      casez (a[1:0])
        2'b0?: q <= sum;
        2'b1?: q <= acc;
        default: q <= ~sum;
      endcase
    end
  end
  child #(.P(W)) u_child (.x(a[0]), .y());
endmodule

module child #(parameter P = 2) (input x, output y);
  assign y = x ? 1'b1 : 1'b0;
endmodule
"""


def nodes_with_line_zero(root):
    """All dataclass nodes reachable from ``root`` whose line is 0."""
    bad = []
    seen = set()
    stack = [root]
    while stack:
        obj = stack.pop()
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            if getattr(obj, "line", 1) == 0:
                bad.append(obj)
            for f in dataclasses.fields(obj):
                stack.append(getattr(obj, f.name))
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
    return bad


def test_kitchen_sink_nodes_have_lines():
    source = parse_source(KITCHEN_SINK)
    assert nodes_with_line_zero(source) == []


@pytest.mark.parametrize("src_fn", [arm2_source, filterchip_source],
                         ids=["arm2", "filterchip"])
def test_bundled_design_nodes_have_lines(src_fn):
    source = parse_source(preprocess(src_fn()))
    bad = nodes_with_line_zero(source)
    assert bad == [], [type(node).__name__ for node in bad[:10]]
