"""Table formatting tests."""

from repro.core.report import format_table


class TestFormatTable:
    def test_empty(self):
        out = format_table("Empty", [])
        assert "no rows" in out

    def test_alignment(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 123456},
        ]
        out = format_table("T", rows)
        lines = out.splitlines()
        assert lines[0] == "T"
        # All data lines have equal width.
        assert len(lines[2]) == len(lines[3]) == len(lines[4])
        assert "longer" in out

    def test_float_formatting(self):
        out = format_table("T", [{"x": 3.14159}])
        assert "3.14" in out
        assert "3.14159" not in out

    def test_explicit_columns_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table("T", rows, columns=["c", "a"])
        header = out.splitlines()[1]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cell_blank(self):
        out = format_table("T", [{"a": 1}, {"a": 2, "b": 9}],
                           columns=["a", "b"])
        assert "9" in out
