"""Concurrent artifact-store publishes: last-writer-wins, never corruption.

The job server's workers (and any two pipeline processes sharing a cache
directory) can race ``put`` on the same key.  The store publishes through
``os.replace`` of a per-writer temp file, so both writers must succeed
and a subsequent ``get`` must return one writer's payload intact — a torn
mix of the two, or a corrupt-entry miss, is a bug.
"""

import multiprocessing
import os

import pytest

from repro.store.core import MISS, ArtifactStore

STAGE = "serve"
KEY = {"request": "deadbeef"}


def _racing_put(root, barrier, tag, results):
    store = ArtifactStore(root)
    payload = {"writer": tag, "rows": list(range(256)), "pad": "x" * 4096}
    barrier.wait(timeout=30)
    ok = store.put(STAGE, KEY, payload)
    read_back = store.get(STAGE, KEY)
    results.put((tag, ok, read_back is not MISS and read_back["writer"]))


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
def test_two_processes_racing_put_both_succeed(tmp_path):
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(2)
    results = context.Queue()
    workers = [
        context.Process(target=_racing_put,
                        args=(str(tmp_path), barrier, tag, results))
        for tag in ("a", "b")
    ]
    for worker in workers:
        worker.start()
    outcomes = {}
    for _ in workers:
        tag, ok, seen_writer = results.get(timeout=60)
        outcomes[tag] = (ok, seen_writer)
    for worker in workers:
        worker.join(timeout=30)
        assert worker.exitcode == 0
    # Both writers succeed, and each read back a complete envelope from
    # one of the two writers (the race decides which).
    assert set(outcomes) == {"a", "b"}
    for ok, seen_writer in outcomes.values():
        assert ok is True
        assert seen_writer in ("a", "b")

    # The surviving entry is a fully intact envelope.
    final = ArtifactStore(str(tmp_path)).get(STAGE, KEY)
    assert final is not MISS
    assert final["writer"] in ("a", "b")
    assert final["rows"] == list(range(256))
    assert len(final["pad"]) == 4096
    # No temp files were left behind by the losing writer.
    leftovers = [name for _dir, _sub, files in os.walk(tmp_path)
                 for name in files if name.startswith(".tmp-")]
    assert leftovers == []
