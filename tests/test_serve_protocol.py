"""Job model: spec validation, fingerprints, and wire round-trips."""

import pytest

from repro.serve.protocol import (
    BUNDLED_DESIGNS,
    OPERATIONS,
    Job,
    JobSpec,
    ProtocolError,
    bundled_source,
)

TINY = "module t(input a, output y); assign y = ~a; endmodule\n"


def _spec(**overrides) -> JobSpec:
    fields = {"op": "lint", "source": TINY}
    fields.update(overrides)
    return JobSpec(**fields).validate()


class TestValidate:
    def test_accepts_every_operation(self):
        for op in OPERATIONS:
            spec = _spec(op=op, mut="t", target="y")
            assert spec.op == op

    def test_explain_requires_target(self):
        with pytest.raises(ProtocolError, match="target"):
            _spec(op="explain")
        spec = _spec(op="explain", target="y")
        assert spec.target == "y"

    def test_target_enters_fingerprint(self):
        base = _spec(op="explain", target="y")
        other = _spec(op="explain", target="a")
        assert base.fingerprint() != other.fingerprint()

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            _spec(op="synthesize")

    def test_needs_source_or_design(self):
        with pytest.raises(ProtocolError, match="source"):
            JobSpec(op="lint").validate()

    def test_source_and_design_are_exclusive(self):
        with pytest.raises(ProtocolError, match="exclusive"):
            JobSpec(op="lint", source=TINY, design="arm2").validate()

    def test_bundled_design_resolves_to_source(self):
        spec = JobSpec(op="lint", design="arm2").validate()
        assert spec.design is None
        assert spec.source == bundled_source("arm2")
        assert "module" in spec.source

    def test_unknown_bundled_design(self):
        with pytest.raises(ProtocolError, match="unknown bundled design"):
            JobSpec(op="lint", design="nonesuch").validate()
        assert "arm2" in BUNDLED_DESIGNS

    def test_analysis_ops_require_mut(self):
        for op in ("analyze", "testability", "atpg"):
            with pytest.raises(ProtocolError, match="requires 'mut'"):
                _spec(op=op)

    def test_rejects_bad_mode_backend_and_ints(self):
        with pytest.raises(ProtocolError, match="bad mode"):
            _spec(mode="fast")
        with pytest.raises(ProtocolError, match="bad backend"):
            _spec(backend="gpu")
        with pytest.raises(ProtocolError, match="must be an integer"):
            _spec(frames="4")
        with pytest.raises(ProtocolError, match="must be an integer"):
            _spec(seed=True)
        with pytest.raises(ProtocolError, match=">= 1"):
            _spec(frames=0)
        with pytest.raises(ProtocolError, match="deadline_s"):
            _spec(deadline_s=-1)


class TestFingerprint:
    def test_stable_and_hex(self):
        a, b = _spec(), _spec()
        assert a.fingerprint() == b.fingerprint()
        int(a.fingerprint(), 16)

    def test_uploaded_source_equals_bundled_name(self):
        by_name = JobSpec(op="lint", design="arm2").validate()
        by_text = JobSpec(op="lint",
                          source=bundled_source("arm2")).validate()
        assert by_name.fingerprint() == by_text.fingerprint()

    def test_semantic_fields_change_it(self):
        base = _spec().fingerprint()
        assert _spec(seed=7).fingerprint() != base
        assert _spec(strict=True).fingerprint() != base
        assert _spec(source=TINY + "\n// changed\n").fingerprint() != base

    def test_admission_knobs_do_not_change_it(self):
        assert _spec(deadline_s=5.0).fingerprint() == _spec().fingerprint()


class TestWireFormat:
    def test_round_trip(self):
        spec = _spec(op="atpg", mut="t", frames=2, seed=17)
        clone = JobSpec.from_dict(spec.as_dict()).validate()
        assert clone.fingerprint() == spec.fingerprint()

    def test_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            JobSpec.from_dict({"op": "lint", "source": TINY, "prio": 9})

    def test_rejects_non_object_and_missing_op(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            JobSpec.from_dict(["lint"])
        with pytest.raises(ProtocolError, match="'op'"):
            JobSpec.from_dict({"source": TINY})


class TestJob:
    def test_summary_omits_result_body(self):
        spec = _spec(op="atpg", mut="t")
        job = Job(job_id="job-1-abc", spec=spec,
                  fingerprint=spec.fingerprint(),
                  result={"coverage_percent": 92.0})
        summary = job.summary()
        assert "result" not in summary
        assert summary["id"] == "job-1-abc"
        assert summary["op"] == "atpg"
        assert job.as_dict()["result"] == {"coverage_percent": 92.0}
