"""Property tests for the five-valued D-algebra."""

from hypothesis import given, strategies as st

from repro.atpg import values as V


five = st.sampled_from(V.ALL_VALUES)


def components(value):
    return V.good_bit(value), V.faulty_bit(value)


def and3(a, b):
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return 1


def or3(a, b):
    if a == 1 or b == 1:
        return 1
    if a is None or b is None:
        return None
    return 0


def xor3(a, b):
    if a is None or b is None:
        return None
    return a ^ b


class TestEncoding:
    def test_component_values(self):
        assert components(V.V0) == (0, 0)
        assert components(V.V1) == (1, 1)
        assert components(V.VD) == (1, 0)
        assert components(V.VDBAR) == (0, 1)
        assert components(V.VX) == (None, None)

    def test_from_components_roundtrip(self):
        for value in (V.V0, V.V1, V.VD, V.VDBAR):
            assert V.from_components(*components(value)) == value

    def test_partial_unknown_collapses_to_x(self):
        assert V.from_components(None, 0) == V.VX
        assert V.from_components(1, None) == V.VX

    def test_names(self):
        assert V.value_name(V.VD) == "D"
        assert V.value_name(V.VDBAR) == "D'"


class TestOperationConsistency:
    """Each 5-valued op must act component-wise like the 3-valued op."""

    @given(five, five)
    def test_and(self, a, b):
        ag, af = components(a)
        bg, bf = components(b)
        expected = V.from_components(and3(ag, bg), and3(af, bf))
        assert V.v_and(a, b) == expected

    @given(five, five)
    def test_or(self, a, b):
        ag, af = components(a)
        bg, bf = components(b)
        expected = V.from_components(or3(ag, bg), or3(af, bf))
        assert V.v_or(a, b) == expected

    @given(five, five)
    def test_xor(self, a, b):
        ag, af = components(a)
        bg, bf = components(b)
        expected = V.from_components(xor3(ag, bg), xor3(af, bf))
        assert V.v_xor(a, b) == expected

    @given(five)
    def test_not_involution(self, a):
        assert V.v_not(V.v_not(a)) == a

    @given(five, five)
    def test_commutativity(self, a, b):
        assert V.v_and(a, b) == V.v_and(b, a)
        assert V.v_or(a, b) == V.v_or(b, a)
        assert V.v_xor(a, b) == V.v_xor(b, a)

    @given(five, five, five)
    def test_associativity_up_to_x_collapse(self, a, b, c):
        """The algebra is conservative, not associative: regrouping may only
        lose information (collapse to X), never produce a conflicting
        definite value — e.g. (D & D') & X = 0 but D & (D' & X) = X."""

        def compatible(x, y):
            return x == y or x == V.VX or y == V.VX

        assert compatible(V.v_and(V.v_and(a, b), c), V.v_and(a, V.v_and(b, c)))
        assert compatible(V.v_or(V.v_or(a, b), c), V.v_or(a, V.v_or(b, c)))
        assert compatible(V.v_xor(V.v_xor(a, b), c), V.v_xor(a, V.v_xor(b, c)))

    @given(five)
    def test_identities(self, a):
        assert V.v_and(a, V.V1) == a
        assert V.v_or(a, V.V0) == a
        assert V.v_xor(a, V.V0) == a
        assert V.v_and(a, V.V0) == V.V0
        assert V.v_or(a, V.V1) == V.V1

    @given(five)
    def test_demorgan(self, a):
        for b in V.ALL_VALUES:
            assert V.v_not(V.v_and(a, b)) == V.v_or(V.v_not(a), V.v_not(b))


class TestDValues:
    def test_d_detection(self):
        assert V.is_d_value(V.VD)
        assert V.is_d_value(V.VDBAR)
        assert not V.is_d_value(V.V0)
        assert not V.is_d_value(V.V1)
        assert not V.is_d_value(V.VX)

    def test_d_and_dbar_cancel(self):
        # D & D' = (1&0, 0&1) = (0, 0) = 0.
        assert V.v_and(V.VD, V.VDBAR) == V.V0
        # D | D' = 1.
        assert V.v_or(V.VD, V.VDBAR) == V.V1
        # D ^ D' = (1^0, 0^1) = (1, 1) = 1.
        assert V.v_xor(V.VD, V.VDBAR) == V.V1
        # D ^ D = 0.
        assert V.v_xor(V.VD, V.VD) == V.V0

    def test_d_propagation_through_and(self):
        assert V.v_and(V.VD, V.V1) == V.VD
        assert V.v_and(V.VD, V.V0) == V.V0
        assert V.v_and(V.VD, V.VX) == V.VX

    def test_not_inverts_d(self):
        assert V.v_not(V.VD) == V.VDBAR
        assert V.v_not(V.VDBAR) == V.VD
