"""Longer ISA-level programs on the ARM-2 substitute.

These run multi-instruction programs end to end through the synthesized
netlist, checking architectural state through the memory interface — the
closest thing to the class-project validation the original benchmark had.
"""

import sys

import pytest

sys.path.insert(0, "tests")
from test_arm2_design import (  # noqa: E402
    NOP, ArmRunner, OPS, beq, cmp_, ld, movi, rfe, rrr, st_rb, swi,
)


@pytest.fixture(scope="module")
def cpu():
    return ArmRunner()


def store_and_read(cpu, reg):
    cpu.cycle(st_rb(reg, 0, 0))
    return cpu.word("mem_wdata")


class TestPrograms:
    def test_fibonacci(self, cpu):
        """r1,r2 walk the Fibonacci sequence using ADD + register moves."""
        cpu.reset()
        cpu.cycle(movi(0, 0))          # r0 = 0 (move-by-ADD uses it)
        cpu.cycle(movi(1, 1))          # r1 = 1
        cpu.cycle(movi(2, 1))          # r2 = 1
        for _ in range(5):
            cpu.cycle(rrr("ADD", 3, 1, 2))   # r3 = r1 + r2
            cpu.cycle(rrr("ADD", 1, 2, 0))   # r1 = r2  (r0 == 0)
            cpu.cycle(rrr("ADD", 2, 3, 0))   # r2 = r3
        # fib: 1 1 2 3 5 8 13 -> after 5 iterations r2 = 13
        assert store_and_read(cpu, 2) == 13

    def test_register_zero_convention(self, cpu):
        # r0 is never written by this program and reads as reset value 0
        # only after a write; force it to 0 explicitly first.
        cpu.reset()
        cpu.cycle(movi(0, 0))
        assert store_and_read(cpu, 0) == 0

    def test_memory_copy_loop_unrolled(self, cpu):
        """LD/ST pairs move data through the register file."""
        cpu.reset()
        cpu.cycle(movi(1, 0x20))                 # base address
        data = [0x111, 0x222, 0x333]
        for offset, word in enumerate(data):
            cpu.cycle(ld(2, 1, offset), mem_rdata=word)
            assert cpu.word("mem_addr") == 0x20 + offset
            cpu.cycle(st_rb(2, 1, 0))
            assert cpu.word("mem_wdata") == word

    def test_loop_with_branch(self, cpu):
        """Count down from 3 using CMP/BEQ; the branch exits the loop."""
        cpu.reset()
        cpu.cycle(movi(1, 3))         # counter
        cpu.cycle(movi(2, 1))         # decrement
        cpu.cycle(movi(3, 0))         # zero for comparison
        iterations = 0
        for _ in range(10):
            cpu.cycle(rrr("SUB", 1, 1, 2))   # r1 -= 1
            cpu.cycle(cmp_(1, 3))            # z = (r1 == 0)
            cpu.cycle(NOP)                   # flags settle
            cpu.cycle(beq(0x70))
            iterations += 1
            cpu.cycle(NOP)
            if cpu.word("inst_addr", 8) == 0x70:
                break
        assert iterations == 3

    def test_exception_return_resumes_flow(self, cpu):
        cpu.reset()
        cpu.cycle(movi(1, 0x11))
        cpu.cycle(swi())              # enter supervisor
        assert True  # epc recorded
        cpu.cycle(movi(2, 0x22))      # handler body
        cpu.cycle(rfe())              # return
        cpu.cycle(NOP)
        # Both the pre-exception and handler writes persist.
        assert store_and_read(cpu, 1) == 0x11
        assert store_and_read(cpu, 2) == 0x22

    def test_all_registers_independent(self, cpu):
        cpu.reset()
        for reg in range(8):
            cpu.cycle(movi(reg, 0x10 + reg))
        for reg in range(8):
            assert store_and_read(cpu, reg) == 0x10 + reg

    def test_shift_chain(self, cpu):
        cpu.reset()
        cpu.cycle(movi(1, 1))
        cpu.cycle(movi(2, 4))
        cpu.cycle(rrr("SHL", 3, 1, 2))    # r3 = 1 << 4 = 16
        cpu.cycle(rrr("SHL", 3, 3, 2))    # r3 = 16 << 4 = 256
        cpu.cycle(movi(4, 8))
        cpu.cycle(rrr("SHR", 3, 3, 4))    # r3 = 256 >> 8 = 1
        assert store_and_read(cpu, 3) == 1
