"""Test-set persistence, replay and chip-level translation tests."""

import pytest

from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.vectors import Test, TestSet
from repro.designs import adder_source, counter_source
from repro.designs.arm2_translation import (
    load_register_program,
    to_chip_vectors,
    translate_test,
)
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


@pytest.fixture
def adder_testset():
    nl = netlist_of(adder_source())
    engine = AtpgEngine(nl, AtpgOptions(max_frames=1))
    report = engine.run()
    return nl, TestSet.from_engine(engine, nl), report


class TestRoundTrip:
    def test_save_load(self, adder_testset, tmp_path):
        nl, ts, _ = adder_testset
        path = str(tmp_path / "adder.tests")
        ts.save(path)
        loaded = TestSet.load(path)
        assert loaded.name == ts.name
        assert loaded.pi_names == ts.pi_names
        assert len(loaded.tests) == len(ts.tests)
        for a, b in zip(ts.tests, loaded.tests):
            assert a.vectors == b.vectors
            assert a.initial_state == b.initial_state

    def test_replay_reproduces_coverage(self, adder_testset):
        nl, ts, report = adder_testset
        coverage = ts.measure_coverage(nl)
        assert coverage == pytest.approx(report.coverage_percent, abs=0.01)

    def test_replay_with_initial_state(self, tmp_path):
        nl = netlist_of(counter_source())
        ts = TestSet(nl.name, [nl.net_name(pi) for pi in nl.pis])
        # One crafted test: load all-ones, observe wrap.
        state = {nl.net_name(d.output): 1 for d in nl.dffs()}
        ts.add(Test(vectors=[{"clk": 0, "rst": 0, "en": 0}],
                    initial_state=state))
        cov = ts.measure_coverage(nl)
        assert cov > 0

    def test_malformed_files_rejected(self, tmp_path):
        bad = tmp_path / "bad.tests"
        bad.write_text("nonsense\n")
        with pytest.raises(ValueError):
            TestSet.load(str(bad))
        bad.write_text("testset t\ninputs a\nvec 1\n")
        with pytest.raises(ValueError):
            TestSet.load(str(bad))
        bad.write_text("testset t\ninputs a b\ntest\nvec 1\nend\n")
        with pytest.raises(ValueError):
            TestSet.load(str(bad))


class TestRegisterLoadPrograms:
    def test_small_value_single_movi(self):
        prog = load_register_program(3, 0x5A)
        assert len(prog) == 1

    def test_full_width_value(self):
        prog = load_register_program(2, 0xBEEF)
        assert len(prog) == 5

    @pytest.mark.parametrize("value", [0, 1, 0xFF, 0x100, 0xABCD, 0xFFFF])
    def test_programs_execute_correctly(self, value):
        """Run the generated program on the real processor and check the
        register holds the value (via a store)."""
        import sys
        sys.path.insert(0, "tests")
        from test_arm2_design import ArmRunner, NOP, st_rb

        cpu = ArmRunner()
        cpu.reset()
        for word in load_register_program(2, value):
            cpu.cycle(word)
        cpu.cycle(NOP)
        cpu.cycle(st_rb(2, 0, 0))
        assert cpu.word("mem_wdata") == value


class TestChipTranslation:
    def test_translate_pier_state(self):
        test = Test(
            vectors=[{"inst[0]": 1}],
            initial_state={
                "u_core.u_dp.u_rb.u_rf.u_r3.r[0]": 1,
                "u_core.u_dp.u_rb.u_rf.u_r3.r[8]": 1,
                "u_core.u_dp.wb_we": 1,  # not an rf cell: untranslatable
            },
        )
        translated = translate_test(test)
        assert translated.loaded_registers == {3: 0x101}
        assert "u_core.u_dp.wb_we" in translated.untranslated_state
        assert translated.prologue
        assert len(translated.epilogue) == 1

    def test_chip_vectors_shape(self):
        from repro.designs import arm2_design

        nl = synthesize(arm2_design())
        pi_names = [nl.net_name(pi) for pi in nl.pis]
        test = Test(vectors=[{"inst[0]": 1, "mem_rdata[3]": 1}],
                    initial_state={"u_core.u_dp.u_rb.u_rf.u_r1.r[2]": 1})
        translated = translate_test(test)
        vectors = to_chip_vectors(translated, pi_names)
        # reset + prologue + body + epilogue + drain
        assert len(vectors) == 1 + len(translated.prologue) + 1 + 1 + 1
        assert vectors[0]["rst"] == 1
        assert all(v["rst"] == 0 for v in vectors[1:])
        assert vectors[-3]["mem_rdata[3]"] == 1
