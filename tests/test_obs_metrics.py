"""Metrics registry: counter/gauge/histogram semantics and snapshots."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    get_registry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("c")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7
        assert g.snapshot() == {"type": "gauge", "value": 7}


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None

    def test_buckets_power_of_two(self):
        h = Histogram("h")
        h.observe(0.75)   # le_2^0
        h.observe(3.0)    # le_2^2
        h.observe(3.5)    # le_2^2
        buckets = h.snapshot()["buckets"]
        assert buckets["le_2^0"] == 1
        assert buckets["le_2^2"] == 2

    def test_nonpositive_values_counted_but_unbucketed(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(-2.0)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["buckets"] == {}
        assert snap["min"] == -2.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(1)
        reg.gauge("a.level").set(2.5)
        reg.histogram("c.dist").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.dist"]
        json.dumps(snap)  # must not raise

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("atpg.backtracks").inc()
        reg.counter("parse.tokens").inc()
        assert list(reg.snapshot(prefix="atpg.")) == ["atpg.backtracks"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {}
        assert reg.counter("x").value == 0

    def test_module_level_helpers_share_global_registry(self):
        name = "test_obs_metrics.helper"
        counter(name).inc(3)
        assert get_registry().snapshot()[name]["value"] >= 3
