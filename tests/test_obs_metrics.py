"""Metrics registry: counter/gauge/histogram semantics and snapshots."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    get_registry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("c")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7
        assert g.snapshot() == {"type": "gauge", "value": 7}


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None

    def test_buckets_power_of_two(self):
        h = Histogram("h")
        h.observe(0.75)   # le_2^0
        h.observe(3.0)    # le_2^2
        h.observe(3.5)    # le_2^2
        buckets = h.snapshot()["buckets"]
        assert buckets["le_2^0"] == 1
        assert buckets["le_2^2"] == 2

    def test_nonpositive_values_counted_but_unbucketed(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(-2.0)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["buckets"] == {}
        assert snap["min"] == -2.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(1)
        reg.gauge("a.level").set(2.5)
        reg.histogram("c.dist").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.dist"]
        json.dumps(snap)  # must not raise

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("atpg.backtracks").inc()
        reg.counter("parse.tokens").inc()
        assert list(reg.snapshot(prefix="atpg.")) == ["atpg.backtracks"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {}
        assert reg.counter("x").value == 0

    def test_module_level_helpers_share_global_registry(self):
        name = "test_obs_metrics.helper"
        counter(name).inc(3)
        assert get_registry().snapshot()[name]["value"] >= 3


class TestPrometheusExposition:
    def test_empty_registry_is_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_counter_total_suffix_and_name_mangling(self):
        reg = MetricsRegistry()
        reg.counter("store.ast.hits", "AST cache hits").inc(7)
        text = reg.to_prometheus()
        assert "# HELP store_ast_hits_total AST cache hits\n" in text
        assert "# TYPE store_ast_hits_total counter\n" in text
        assert "store_ast_hits_total 7\n" in text
        assert "." not in text.replace("0.0.4", "")

    def test_gauge_plain_name(self):
        reg = MetricsRegistry()
        reg.gauge("serve.queue_depth").set(3)
        text = reg.to_prometheus()
        assert "# TYPE serve_queue_depth gauge\n" in text
        assert "serve_queue_depth 3\n" in text
        assert "_total" not in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("job.seconds")
        for v in (0.75, 3.0, 3.5):  # 2^0 bucket, then two in 2^2
            h.observe(v)
        h.observe(0.0)  # unbucketed, but counted
        text = reg.to_prometheus()
        assert 'job_seconds_bucket{le="1.0"} 1\n' in text
        # cumulative: the 2^2 bucket includes the 2^0 observation
        assert 'job_seconds_bucket{le="4.0"} 3\n' in text
        assert 'job_seconds_bucket{le="+Inf"} 4\n' in text
        assert "job_seconds_sum 7.25\n" in text
        assert "job_seconds_count 4\n" in text

    def test_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("serve.executed").inc()
        reg.counter("parse.tokens").inc()
        text = reg.to_prometheus(prefix="serve.")
        assert "serve_executed_total" in text
        assert "parse_tokens" not in text

    def test_leading_digit_gets_underscore(self):
        reg = MetricsRegistry()
        reg.gauge("2pass.width").set(1)
        assert "_2pass_width 1\n" in reg.to_prometheus()

    def test_text_ends_with_newline_and_parses_line_wise(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("b").observe(1.5)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample value must be numeric
            assert name
