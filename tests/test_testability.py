"""Testability analysis tests (paper Section 4.2)."""

import pytest

from repro.core.composer import ConstraintComposer
from repro.core.extractor import ExtractionMode, MutSpec
from repro.core.testability import analyze_testability
from repro.designs import arm2_source
from repro.hierarchy import Design
from repro.verilog.parser import parse_source


def report_for(src, module, path, top=None):
    design = Design(parse_source(src), top=top)
    composer = ConstraintComposer(design, ExtractionMode.COMPOSE)
    extraction = composer.extract(MutSpec(module=module, path=path))
    return analyze_testability(design, extraction)


class TestHardCodedDetection:
    DECODE_STYLE = """
    module mut(input [1:0] ctl, input [3:0] data, output [3:0] o);
      assign o = ctl[0] ? data : (ctl[1] ? ~data : 4'd0);
    endmodule
    module top(input [1:0] sel, input [3:0] data, output [3:0] y);
      reg [1:0] ctl;
      always @(*)
        case (sel)
          2'd0: ctl = 2'b01;
          2'd1: ctl = 2'b10;
          default: ctl = 2'b00;
        endcase
      mut u_mut(.ctl(ctl), .data(data), .o(y));
    endmodule
    """

    def test_hard_coded_port_flagged(self):
        report = report_for(self.DECODE_STYLE, "mut", "u_mut.")
        ports = {h.port for h in report.hard_coded_ports}
        assert "ctl" in ports
        assert "data" not in ports
        assert report.num_hard_coded == 1
        assert report.total_input_ports == 2

    def test_selector_identified(self):
        report = report_for(self.DECODE_STYLE, "mut", "u_mut.")
        hc = report.hard_coded_ports[0]
        assert "sel" in hc.selectors

    def test_constant_sites_traced(self):
        report = report_for(self.DECODE_STYLE, "mut", "u_mut.")
        hc = report.hard_coded_ports[0]
        assert len(hc.constant_sites) == 3  # the three case arms

    def test_warning_emitted(self):
        report = report_for(self.DECODE_STYLE, "mut", "u_mut.")
        kinds = {w.kind for w in report.warnings}
        assert "hard_coded" in kinds

    def test_summary_mentions_counts(self):
        report = report_for(self.DECODE_STYLE, "mut", "u_mut.")
        text = report.summary()
        assert "1 of 2" in text


class TestNotHardCoded:
    def test_data_driven_port_not_flagged(self):
        src = """
        module mut(input [3:0] d, output [3:0] o);
          assign o = ~d;
        endmodule
        module top(input [3:0] a, output [3:0] y);
          mut u_mut(.d(a), .o(y));
        endmodule
        """
        report = report_for(src, "mut", "u_mut.")
        assert report.num_hard_coded == 0

    def test_mixed_cone_not_flagged(self):
        # One path constant, one path from a pin: NOT hard-coded.
        src = """
        module mut(input c, output o);
          assign o = ~c;
        endmodule
        module top(input sel, input pin, output y);
          reg c;
          always @(*)
            if (sel) c = 1'b1;
            else c = pin;
          mut u_mut(.c(c), .o(y));
        endmodule
        """
        report = report_for(src, "mut", "u_mut.")
        assert report.num_hard_coded == 0

    def test_routing_through_part_select_still_traced(self):
        src = """
        module mut(input [1:0] ctl, output o);
          assign o = ^ctl;
        endmodule
        module top(input s, output y);
          reg [3:0] table_word;
          wire [1:0] slice;
          always @(*)
            if (s) table_word = 4'hA;
            else table_word = 4'h5;
          assign slice = table_word[2:1];
          mut u_mut(.ctl(slice), .o(y));
        endmodule
        """
        report = report_for(src, "mut", "u_mut.")
        assert {h.port for h in report.hard_coded_ports} == {"ctl"}


class TestEmptyChainWarnings:
    def test_no_driver_warning(self):
        src = """
        module mut(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire floating;
          mut u_mut(.i(floating), .o(y));
        endmodule
        """
        report = report_for(src, "mut", "u_mut.")
        warns = [w for w in report.warnings if w.kind == "no_driver"]
        assert any(w.signal == "floating" for w in warns)

    def test_no_propagation_warning(self):
        src = """
        module mut(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire dead;
          mut u_mut(.i(a), .o(dead));
          assign y = a;
        endmodule
        """
        report = report_for(src, "mut", "u_mut.")
        warns = [w for w in report.warnings if w.kind == "no_propagation"]
        assert any(w.signal == "dead" for w in warns)


class TestArm2AluStory:
    """The paper's Section 4.2 example: most of the ALU's control inputs are
    driven from the decode table's hard-coded values."""

    @pytest.fixture(scope="class")
    def report(self):
        return report_for(arm2_source(), "arm_alu", "u_core.u_dp.u_alu.",
                          top="arm")

    def test_control_inputs_hard_coded(self, report):
        ports = {h.port for h in report.hard_coded_ports}
        # All 13 single-bit control inputs come from the decode table.
        expected = {
            "op_add", "op_sub", "op_and", "op_or", "op_xor", "op_shl",
            "op_shr", "op_pass_b", "inv_a", "inv_b", "cin", "flag_en",
            "cmp_mode",
        }
        assert expected <= ports

    def test_data_inputs_not_hard_coded(self, report):
        ports = {h.port for h in report.hard_coded_ports}
        assert "a" not in ports
        assert "b" not in ports

    def test_opcode_is_the_selector(self, report):
        selectors = set()
        for hc in report.hard_coded_ports:
            selectors |= set(hc.selectors)
        assert "opcode" in selectors or "inst" in selectors


class TestAbortedPathTrace:
    SRC = """
    module mut(input i, output o);
      assign o = ~i;
    endmodule
    module glue(input g_in, output g_out);
      assign g_out = g_in;
    endmodule
    module top(input a, output y);
      wire floating;
      wire routed;
      glue u_g(.g_in(floating), .g_out(routed));
      mut u_mut(.i(routed), .o(y));
    endmodule
    """

    def test_trace_reaches_mut(self):
        from repro.core.extractor import MutSpec
        from repro.core.testability import trace_aborted_path
        from repro.hierarchy import Design
        from repro.verilog.parser import parse_source

        design = Design(parse_source(self.SRC))
        hops = trace_aborted_path(design, "top", "floating",
                                  MutSpec(module="mut", path="u_mut."))
        assert hops[0].module == "top"
        assert hops[0].signal == "floating"
        assert hops[-1].module == "mut"
        # The path crosses the glue module.
        assert any(h.module == "glue" for h in hops)

    def test_trace_of_unconnected_signal_stays_short(self):
        from repro.core.extractor import MutSpec
        from repro.core.testability import trace_aborted_path
        from repro.hierarchy import Design
        from repro.verilog.parser import parse_source

        src = """
        module mut(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y, output z);
          wire isolated;
          assign z = isolated;
          mut u_mut(.i(a), .o(y));
        endmodule
        """
        design = Design(parse_source(src))
        hops = trace_aborted_path(design, "top", "isolated",
                                  MutSpec(module="mut", path="u_mut."))
        # The isolated signal never reaches the MUT: best-effort trace only.
        assert hops[-1].module != "mut"
