"""Root-cause connectivity analysis: reason classification, trace shape,
lazy elaboration gating and waiver expiry."""

import os

import pytest

from repro.hierarchy.design import Design
from repro.lint import (
    LintConfig,
    LintError,
    RootCauseAnalyzer,
    Waiver,
    run_lint,
)
from repro.lint.explain import explain_query, resolve_target
from repro.lint.rules_chain import empty_chain_diagnostic
from repro.verilog.parser import parse_source

CONN_DEMO = os.path.join(os.path.dirname(__file__), os.pardir,
                         "examples", "conn_demo.v")


def analyzer_for(src, top=None):
    design = Design(parse_source(src), top=top)
    return design, RootCauseAnalyzer(design)


class TestReasonClassification:
    def test_no_definition(self):
        _, an = analyzer_for("""
module m(input a, output y);
endmodule
""")
        trace = an.explain_justification("m", "y")
        assert trace.blocked
        assert trace.root_cause == "no_definition"
        assert len(trace.hops) >= 2

    def test_unused(self):
        _, an = analyzer_for("""
module m(input a, input b, output y);
  assign y = b;
endmodule
""")
        trace = an.explain_propagation("m", "a")
        assert trace.blocked
        assert trace.root_cause == "unused"

    def test_constant_cone_through_assign_chain(self):
        _, an = analyzer_for("""
module m(input a, output y);
  wire k;
  assign k = 1'b1;
  assign y = k;
endmodule
""")
        trace = an.explain_justification("m", "y")
        assert trace.blocked
        assert trace.root_cause == "constant_cone"
        assert trace.pinned.get("k") == 1

    def test_parameter_is_a_constant_cone(self):
        _, an = analyzer_for("""
module m(input a, output y);
  parameter P = 3;
  assign y = P;
endmodule
""")
        trace = an.explain_justification("m", "y")
        assert trace.blocked
        assert trace.root_cause == "constant_cone"
        # Asking about the parameter itself names the parameter construct.
        ptrace = an.explain_justification("m", "P")
        assert ptrace.root_cause == "constant_cone"
        assert any(h.construct == "parameter" for h in ptrace.hops)

    def test_dead_branch(self):
        _, an = analyzer_for("""
module m(input a, output y);
  reg g;
  always @(*) begin
    if (1'b0)
      g = a;
  end
  assign y = g;
endmodule
""")
        trace = an.explain_justification("m", "g")
        assert trace.blocked
        assert trace.root_cause == "dead_branch"
        assert any(h.construct == "if" for h in trace.hops)

    def test_unreachable_dff_state(self):
        _, an = analyzer_for("""
module m(input clk, input d, output y);
  reg r;
  always @(posedge clk) begin
    if (1'b0)
      r <= d;
  end
  assign y = r;
endmodule
""")
        trace = an.explain_justification("m", "r")
        assert trace.blocked
        assert trace.root_cause == "unreachable_dff_state"
        assert any(h.construct == "dff" for h in trace.hops)

    def test_masked_mux_dead_arm_read(self):
        _, an = analyzer_for("""
module m(input a, input b, output y);
  wire w;
  assign w = a ^ b;
  assign y = 1'b1 ? a : w;
endmodule
""")
        trace = an.explain_propagation("m", "w")
        assert trace.blocked
        assert trace.root_cause == "masked_mux"

    def test_masked_mux_controlling_side_input(self):
        _, an = analyzer_for("""
module m(input a, output y);
  wire zero;
  assign zero = 1'b0;
  assign y = a & zero;
endmodule
""")
        trace = an.explain_propagation("m", "a")
        assert trace.blocked
        assert trace.root_cause == "masked_mux"
        assert trace.pinned.get("zero") == 0

    def test_truncated_slice(self):
        _, an = analyzer_for("""
module m(input [1:0] d, output [3:0] y);
  wire [3:0] h;
  assign h[1:0] = d;
  assign y = h;
endmodule
""")
        trace = an.explain_justification("m", "h")
        assert trace.blocked
        assert trace.root_cause == "truncated_slice"
        assert any("[3:2]" in h.reason for h in trace.hops)

    def test_unconnected_port(self):
        _, an = analyzer_for("""
module leaf(input d, output q);
  assign q = d;
endmodule
module m(input a, output y);
  leaf u0(.q(y));
endmodule
""", top="m")
        trace = an.explain_justification("leaf", "d")
        assert trace.blocked
        assert trace.root_cause == "unconnected_port"

    def test_free_path_is_not_blocked(self):
        _, an = analyzer_for("""
module m(input a, output y);
  assign y = ~a;
endmodule
""")
        for trace in (an.explain_justification("m", "y"),
                      an.explain_propagation("m", "a")):
            assert not trace.blocked
            assert trace.root_cause == ""
            assert any("not blocked" in h.reason for h in trace.hops)

    def test_auto_direction_follows_port_direction(self):
        _, an = analyzer_for("""
module m(input a, input b, output y);
  assign y = b;
endmodule
""")
        assert an.explain("m", "a").kind == "propagation"
        assert an.explain("m", "y").kind == "justification"


class TestTraceLineAnchoring:
    """Satellite: W101/W102 trail hops carry real chain-DB lines."""

    SRC = """
module leaf(input d, output q);
  wire t;
  assign t = d;
  assign q = t;
endmodule
"""

    def test_trail_hops_get_chain_lines(self):
        design = Design(parse_source(self.SRC))
        diag = empty_chain_diagnostic(
            "no_driver", "leaf", "q", trail=(("leaf", "t"),),
            chaindb=design.chaindb())
        assert diag.trace
        assert all(step.line > 0 for step in diag.trace)

    def test_trail_hops_without_chaindb_stay_zero(self):
        diag = empty_chain_diagnostic(
            "no_driver", "leaf", "q", trail=(("leaf", "t"),))
        assert all(step.line == 0 for step in diag.trace)


class TestLazyElaboration:
    """Satellite: chain-rules-only runs never build the netlist."""

    SRC = """
module m(input a, input unused, output y, output undriven);
  assign y = a;
endmodule
"""

    def test_chain_only_run_skips_synthesis(self, monkeypatch):
        import repro.synth.elaborate as elaborate

        def boom(*args, **kwargs):
            raise RuntimeError("elaboration must not run")

        monkeypatch.setattr(elaborate, "synthesize", boom)
        design = Design(parse_source(self.SRC))
        result = run_lint(design,
                          LintConfig(enabled={"W101", "W102"}))
        assert {d.rule_id for d in result.diagnostics} == {"W101", "W102"}
        # Traces are attached even without elaboration; witnesses are not.
        assert all(d.trace for d in result.diagnostics)
        assert all(d.witness is None for d in result.diagnostics)

    def test_full_run_attaches_witnesses(self):
        design = Design(parse_source(self.SRC))
        result = run_lint(design)
        by_rule = {d.rule_id: d for d in result.diagnostics}
        assert by_rule["W101"].witness is not None
        assert by_rule["W102"].witness is not None


class TestWaiverExpiry:
    SRC = """
module m(input a, input unused, output y);
  assign y = a;
endmodule
"""

    def _run(self, expires, today):
        import datetime

        design = Design(parse_source(self.SRC))
        cfg = LintConfig(waivers=[Waiver(rule_id="W102", expires=expires)])
        return run_lint(design, cfg,
                        today=datetime.date.fromisoformat(today))

    def test_active_waiver_suppresses(self):
        result = self._run("2099-01-01", "2026-01-01")
        assert not any(d.rule_id == "W102" for d in result.diagnostics)
        assert any(d.rule_id == "W102" for d, _ in result.waived)

    def test_expired_waiver_resurfaces_as_warning(self):
        result = self._run("2020-01-01", "2026-01-01")
        resurfaced = [d for d in result.diagnostics if d.rule_id == "W102"]
        assert len(resurfaced) == 1
        assert resurfaced[0].severity == "warning"
        assert "[waiver expired 2020-01-01]" in resurfaced[0].message
        assert not result.waived

    def test_expiry_boundary_day_still_active(self):
        result = self._run("2026-01-01", "2026-01-01")
        assert not any(d.rule_id == "W102" for d in result.diagnostics)

    def test_bad_expiry_date_rejected(self):
        with pytest.raises(LintError, match="expiry"):
            Waiver(rule_id="W102", expires="not-a-date")


class TestExplainQuery:
    def test_resolve_module_scoped_target(self):
        design = Design(parse_source("""
module leaf(input d); endmodule
module m(input a, output y);
  leaf u0(.d(a));
  assign y = a;
endmodule
"""), top="m")
        assert resolve_target(design, "leaf.d") == ("leaf", "d")
        assert resolve_target(design, "y") == ("m", "y")

    def test_unknown_signal_rejected(self):
        design = Design(parse_source(
            "module m(input a, output y); assign y = a; endmodule"))
        with pytest.raises(LintError, match="no signal"):
            explain_query(design, "nope")

    def test_payload_shape(self):
        design = Design(parse_source(
            "module m(input a, input dead, output y); "
            "assign y = a; endmodule"))
        payload = explain_query(design, "dead")
        assert payload["op"] == "explain"
        assert payload["blocked"] is True
        assert payload["root_cause"] == "unused"
        assert len(payload["trace"]["hops"]) >= 2
        assert payload["witness"]["kind"] == "vector_pair"
        assert payload["witness"]["verified"] is True


class TestConnDemoAcceptance:
    """ISSUE acceptance on the shipped connectivity demo."""

    @pytest.fixture(scope="class")
    def result(self):
        with open(CONN_DEMO, "r", encoding="utf-8") as handle:
            design = Design(parse_source(handle.read()), top="conn_demo")
        return run_lint(design)

    def test_every_empty_chain_finding_has_deep_trace(self, result):
        findings = [d for d in result.diagnostics
                    if d.rule_id in ("W101", "W102")]
        assert findings
        for diag in findings:
            assert len(diag.trace) >= 2, diag.render()
            assert all(step.line > 0 for step in diag.trace), diag.render()
            assert diag.root_cause

    def test_simulator_verified_witness_present(self, result):
        verified = [d for d in result.diagnostics
                    if d.witness is not None
                    and d.witness.get("kind") == "vector_pair"
                    and d.witness.get("verified")]
        assert verified

    def test_atpg_redundancy_witness_on_buried_endpoint(self, result):
        atpg = [d for d in result.diagnostics
                if d.witness is not None
                and d.witness.get("kind") == "atpg_redundant"]
        assert atpg

    def test_four_distinct_reasons_reachable_by_explain(self):
        with open(CONN_DEMO, "r", encoding="utf-8") as handle:
            design = Design(parse_source(handle.read()), top="conn_demo")
        reasons = set()
        for target in ("ghost", "stuck", "masked", "half",
                       "orphan_out", "sel_probe"):
            payload = explain_query(design, target, with_witness=False)
            if payload["blocked"]:
                reasons.add(payload["root_cause"])
        assert len(reasons) >= 4, sorted(reasons)

    def test_sarif_code_flows_round_trip(self, result):
        import json

        from repro.lint import render_sarif, validate_sarif

        log = json.loads(render_sarif(result))
        assert validate_sarif(log) == []
        flows = [r for run in log["runs"] for r in run["results"]
                 if r.get("codeFlows")]
        assert flows
        for res in flows:
            locations = res["codeFlows"][0]["threadFlows"][0]["locations"]
            assert len(locations) >= 2
