"""Progress reporting: throttling, thread-locality, the queue reporter
and its heartbeat, and the pipeline hooks that feed it."""

import multiprocessing as mp
import time

from repro.obs import (
    CallbackProgressReporter,
    QueueProgressReporter,
    get_reporter,
    progress,
    reporting,
    set_reporter,
)


class TestProgressHook:
    def test_noop_without_reporter(self):
        assert get_reporter() is None
        progress("phase", n=1)  # must not raise

    def test_reporting_installs_and_restores(self):
        events = []
        reporter = CallbackProgressReporter(events.append)
        with reporting(reporter):
            assert get_reporter() is reporter
            progress("phase", force=True, n=1)
        assert get_reporter() is None
        assert len(events) == 1

    def test_set_reporter_none_uninstalls(self):
        reporter = CallbackProgressReporter(lambda p: None)
        set_reporter(reporter)
        assert get_reporter() is reporter
        set_reporter(None)
        assert get_reporter() is None


class TestThrottling:
    def test_same_phase_throttled(self):
        events = []
        reporter = CallbackProgressReporter(events.append,
                                            min_interval=3600.0)
        for i in range(10):
            reporter.emit("loop", i=i)
        assert len(events) == 1
        assert events[0]["i"] == 0

    def test_force_bypasses_throttle(self):
        events = []
        reporter = CallbackProgressReporter(events.append,
                                            min_interval=3600.0)
        reporter.emit("loop", i=0)
        reporter.emit("loop", force=True, i=1)
        assert [e["i"] for e in events] == [0, 1]

    def test_phase_transition_always_emits(self):
        events = []
        reporter = CallbackProgressReporter(events.append,
                                            min_interval=3600.0)
        reporter.emit("a")
        reporter.emit("b")
        reporter.emit("a")
        assert [e["phase"] for e in events] == ["a", "b", "a"]

    def test_zero_interval_emits_everything(self):
        events = []
        reporter = CallbackProgressReporter(events.append, min_interval=0.0)
        for i in range(5):
            reporter.emit("loop", i=i)
        assert len(events) == 5

    def test_payload_shape_and_seq(self):
        events = []
        reporter = CallbackProgressReporter(events.append, min_interval=0.0)
        reporter.emit("scan", found=3)
        reporter.emit("scan", found=4)
        assert events[0]["event"] == "progress"
        assert events[0]["phase"] == "scan"
        assert events[0]["found"] == 3
        assert [e["seq"] for e in events] == [1, 2]
        assert events[1]["t"] >= events[0]["t"]


class TestQueueReporter:
    def test_payloads_cross_a_real_mp_queue(self):
        queue = mp.SimpleQueue()
        reporter = QueueProgressReporter(queue, "job-1", min_interval=0.0,
                                         heartbeat_s=None)
        reporter.emit("phase", n=1)
        reporter.emit("phase", n=2)
        reporter.stop()
        job_id, payload = queue.get()
        assert job_id == "job-1"
        assert payload["phase"] == "phase" and payload["n"] == 1
        assert queue.get()[1]["n"] == 2
        queue.close()

    def test_broken_queue_disables_not_raises(self):
        class Broken:
            def put(self, item):
                raise OSError("pipe closed")

        reporter = QueueProgressReporter(Broken(), "job-1",
                                         min_interval=0.0,
                                         heartbeat_s=None)
        reporter.emit("phase", n=1)  # must not raise
        reporter.emit("phase", n=2)
        assert reporter._broken

    def test_heartbeat_fires_when_idle(self):
        queue = mp.SimpleQueue()
        reporter = QueueProgressReporter(queue, "job-1",
                                         heartbeat_s=0.05).start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not queue.empty():
                    break
                time.sleep(0.01)
            job_id, payload = queue.get()
        finally:
            reporter.stop()
            queue.close()
        assert job_id == "job-1"
        assert payload["event"] == "heartbeat"

    def test_stop_joins_heartbeat_thread(self):
        queue = mp.SimpleQueue()
        reporter = QueueProgressReporter(queue, "job-1",
                                         heartbeat_s=60.0).start()
        assert reporter._thread is not None
        reporter.stop()
        assert reporter._thread is None
        queue.close()


class TestEngineHooks:
    SOURCE = """
    module top(input a, input b, output y);
      wire n;
      child u_c(.a(a), .b(b), .y(n));
      assign y = ~n;
    endmodule
    module child(input a, input b, output y);
      assign y = a & b;
    endmodule
    """

    def test_atpg_run_reports_phases(self):
        from repro.atpg.engine import AtpgOptions
        from repro.core.factor import Factor

        events = []
        factor = Factor.from_verilog(self.SOURCE, top="top")
        result = factor.analyze("child")
        with reporting(CallbackProgressReporter(events.append,
                                                min_interval=0.0)):
            factor.generate_tests(result, AtpgOptions(max_frames=1))
        phases = [e["phase"] for e in events]
        assert phases[0] == "atpg.setup"
        assert phases[-1] == "atpg.done"
        assert "fault_sim" in phases
        # Monotonic sequence numbers, as the /events contract requires.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
