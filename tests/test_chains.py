"""Unit tests for def-use / use-def chains and enclosure tracking."""


from repro.hierarchy import ChainDB, Design
from repro.verilog.parser import parse_source


def chains_for(src, module=None):
    design = Design(parse_source(src))
    db = ChainDB(design)
    return db.chains(module or design.top)


class TestBasicChains:
    def test_cont_assign_def_and_use(self):
        chains = chains_for("""
        module m(input a, output y);
          assign y = a;
        endmodule
        """)
        assert len(chains.ud_chain("y")) == 1
        assert chains.ud_chain("y")[0].kind == "cont_assign"
        # 'a' is defined by its input port and used by the assign.
        kinds = {s.kind for s in chains.ud_chain("a")}
        assert kinds == {"input_port"}
        assert {s.kind for s in chains.du_chain("a")} == {"cont_assign"}

    def test_output_port_is_use(self):
        chains = chains_for("""
        module m(input a, output y);
          assign y = a;
        endmodule
        """)
        assert {s.kind for s in chains.du_chain("y")} == {"output_port"}

    def test_gate_sites(self):
        chains = chains_for("""
        module m(input a, input b, output y);
          and g(y, a, b);
        endmodule
        """)
        assert chains.ud_chain("y")[0].kind == "gate"
        assert chains.du_chain("a")[0].kind == "gate"

    def test_proc_assign_sites(self):
        chains = chains_for("""
        module m(input a, output reg y);
          always @(*) y = a;
        endmodule
        """)
        site = chains.ud_chain("y")[0]
        assert site.kind == "proc_assign"
        assert site.always is not None

    def test_multiple_defs(self):
        chains = chains_for("""
        module m(input a, input b, input c, output reg y);
          always @(*)
            if (c) y = a;
            else y = b;
        endmodule
        """)
        assert len(chains.ud_chain("y")) == 2


class TestEnclosures:
    SRC = """
    module m(input [1:0] s, input c, input a, output reg y);
      always @(*) begin
        y = 1'b0;
        if (c)
          case (s)
            2'd1: y = a;
            default: y = ~a;
          endcase
      end
    endmodule
    """

    def test_enclosing_control_signals(self):
        chains = chains_for(self.SRC)
        defs = chains.ud_chain("y")
        # default assignment: no enclosures; case arms: {c, s}.
        enclosed = [d for d in defs if d.enclosures]
        plain = [d for d in defs if not d.enclosures]
        assert len(plain) == 1
        assert len(enclosed) == 2
        for site in enclosed:
            assert site.enclosing_control_signals() == {"c", "s"}

    def test_control_signals_count_as_uses(self):
        chains = chains_for(self.SRC)
        assert chains.du_chain("c")
        assert chains.du_chain("s")

    def test_sequential_clock_is_control(self):
        chains = chains_for("""
        module m(input clk, input d, output reg q);
          always @(posedge clk) q <= d;
        endmodule
        """)
        site = chains.ud_chain("q")[0]
        assert "clk" in site.enclosing_control_signals()
        assert chains.du_chain("clk")

    def test_for_loop_enclosure(self):
        chains = chains_for("""
        module m(input a, output reg [3:0] y);
          integer i;
          always @(*) begin
            y = 4'd0;
            for (i = 0; i < 4; i = i + 1)
              y[i] = a;
          end
        endmodule
        """)
        loop_sites = [s for s in chains.ud_chain("y") if s.enclosures]
        assert loop_sites
        assert "i" in loop_sites[0].enclosing_control_signals()


class TestInstanceBoundaries:
    SRC = """
    module child(input i, output o);
      assign o = ~i;
    endmodule
    module top(input a, output y);
      wire t;
      child u1(.i(a), .o(t));
      assign y = t;
    endmodule
    """

    def test_instance_defines_output_net(self):
        chains = chains_for(self.SRC, "top")
        assert {s.kind for s in chains.ud_chain("t")} == {"instance"}

    def test_instance_uses_input_net(self):
        chains = chains_for(self.SRC, "top")
        kinds = {s.kind for s in chains.du_chain("a")}
        assert "instance" in kinds

    def test_positional_connections_resolved(self):
        src = """
        module child(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          child u1(a, y);
        endmodule
        """
        chains = chains_for(src, "top")
        assert {s.kind for s in chains.ud_chain("y")} == {"instance"}
        assert "instance" in {s.kind for s in chains.du_chain("a")}


class TestDiagnostics:
    def test_undriven_signal(self):
        chains = chains_for("""
        module m(input a, output y);
          wire ghost;
          assign y = a & ghost;
        endmodule
        """)
        assert chains.undriven_signals() == ["ghost"]

    def test_unused_signal(self):
        chains = chains_for("""
        module m(input a, output y);
          wire dead;
          assign dead = ~a;
          assign y = a;
        endmodule
        """)
        assert chains.unused_signals() == ["dead"]

    def test_clean_module_has_no_diagnostics(self):
        chains = chains_for("""
        module m(input a, output y);
          assign y = ~a;
        endmodule
        """)
        assert chains.undriven_signals() == []
        assert chains.unused_signals() == []

    def test_site_rhs_and_defined_signals(self):
        chains = chains_for("""
        module m(input a, input b, output y);
          assign y = a & b;
        endmodule
        """)
        site = chains.ud_chain("y")[0]
        assert site.rhs_signals() == {"a", "b"}
        assert site.defined_signals() == {"y"}
