"""Miscellaneous core-API behaviours."""

import pytest

from repro import Factor, MutSpec
from repro.core.composer import ConstraintComposer, ReuseStats
from repro.designs import arm2_source, mux_tree_source
from repro.hierarchy import Design
from repro.verilog.parser import parse_source


class TestMutSpec:
    def test_inst_chain(self):
        spec = MutSpec(module="arm_alu", path="u_core.u_dp.u_alu.")
        assert spec.inst_chain == ["u_core", "u_dp", "u_alu"]
        assert spec.inst_name == "u_alu"

    def test_trailing_dot_optional(self):
        spec = MutSpec(module="m", path="u_a.u_b")
        assert spec.inst_chain == ["u_a", "u_b"]


class TestReuseStats:
    def test_fraction(self):
        stats = ReuseStats(extractions=2, tasks_run=30, tasks_reused=10)
        assert stats.reuse_fraction == pytest.approx(0.25)

    def test_empty(self):
        assert ReuseStats().reuse_fraction == 0.0


class TestAnalyzeWithoutPiers:
    def test_no_pier_nets(self):
        factor = Factor.from_verilog(arm2_source(), top="arm")
        result = factor.analyze("forward", path="u_core.u_dp.u_fwd.",
                                use_piers=False)
        assert result.pier_nets == set()
        assert result.piers == []


class TestComposerCaching:
    def test_extraction_cached_by_path(self):
        design = Design(parse_source(mux_tree_source()))
        composer = ConstraintComposer(design)
        a = composer.extract(MutSpec(module="mux2", path="u_lo."))
        b = composer.extract(MutSpec(module="mux2", path="u_lo."))
        assert a is b
        # A different instance of the same module is a different extraction.
        c = composer.extract(MutSpec(module="mux2", path="u_hi."))
        assert c is not a
        assert composer.stats.extractions == 2

    def test_transform_do_optimize_false(self):
        design = Design(parse_source(mux_tree_source()))
        composer = ConstraintComposer(design)
        tr = composer.transform(MutSpec(module="mux2", path="u_lo."),
                                do_optimize=False)
        assert tr.total_gates >= 0


class TestExtractionResultHelpers:
    def test_kept_modules_sorted_and_nonempty(self):
        factor = Factor.from_verilog(arm2_source(), top="arm")
        result = factor.analyze("exc", path="u_core.u_exc.")
        kept = result.extraction.kept_modules()
        assert kept == sorted(kept)
        assert "exc" in kept
        assert "mac32" not in kept  # independent peripheral

    def test_total_statements_counts(self):
        factor = Factor.from_verilog(arm2_source(), top="arm")
        result = factor.analyze("exc", path="u_core.u_exc.")
        assert result.extraction.total_statements() > 0
