"""Static compaction tests."""

import pytest

from repro.atpg.compaction import compact
from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.vectors import TestSet
from repro.designs import adder_source, counter_source, fsm_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def generated_testset(src, top=None, **opt_kw):
    nl = synthesize(Design(parse_source(src), top=top))
    opts = AtpgOptions(**opt_kw)
    engine = AtpgEngine(nl, opts)
    report = engine.run()
    return nl, TestSet.from_engine(engine, nl), report


class TestCompaction:
    def test_coverage_preserved(self):
        nl, ts, report = generated_testset(adder_source(), max_frames=1)
        result = compact(ts, nl)
        assert result.coverage_percent == pytest.approx(
            report.coverage_percent, abs=0.01
        )

    def test_tests_reduced(self):
        # Generate with many redundant random sequences.
        nl, ts, report = generated_testset(
            adder_source(), max_frames=1, random_sequences=16,
            random_sequence_length=32,
        )
        result = compact(ts, nl)
        assert result.kept_tests <= result.original_tests
        assert result.kept_vectors <= result.original_vectors
        assert result.kept_tests < result.original_tests  # some redundancy
        assert result.test_reduction_percent > 0

    def test_sequential_design(self):
        nl, ts, report = generated_testset(
            fsm_source(), max_frames=8, backtrack_limit=4000,
            fault_time_limit=5.0,
        )
        result = compact(ts, nl)
        assert result.coverage_percent == pytest.approx(
            report.coverage_percent, abs=0.01
        )

    def test_empty_testset(self):
        nl = synthesize(Design(parse_source(adder_source())))
        ts = TestSet("empty", [nl.net_name(pi) for pi in nl.pis])
        result = compact(ts, nl)
        assert result.kept_tests == 0
        assert result.coverage_percent == 0.0

    def test_forward_order_option(self):
        nl, ts, _ = generated_testset(adder_source(), max_frames=1)
        fwd = compact(ts, nl, reverse=False)
        rev = compact(ts, nl, reverse=True)
        # Both preserve coverage; kept counts may differ.
        assert fwd.coverage_percent == rev.coverage_percent

    def test_compacted_set_replays(self):
        nl, ts, report = generated_testset(counter_source(), max_frames=6)
        result = compact(ts, nl)
        replay = result.testset.measure_coverage(nl)
        assert replay == pytest.approx(result.coverage_percent, abs=0.01)
