"""Structured logging: event formatting, levels, configuration."""

import io
import logging

import pytest

from repro.obs.log import configure_logging, get_logger


@pytest.fixture
def stream():
    buffer = io.StringIO()
    configure_logging("debug", stream=buffer)
    yield buffer
    configure_logging("warning")  # restore the library default


class TestFormatting:
    def test_event_and_fields(self, stream):
        get_logger("unit").info("thing_done", count=3, rate=0.51239,
                                name="alu")
        line = stream.getvalue().strip()
        assert line == "INFO repro.unit: thing_done count=3 rate=0.51239 name=alu"

    def test_strings_with_spaces_are_quoted(self, stream):
        get_logger("unit").warning("odd", text="two words")
        assert "text='two words'" in stream.getvalue()

    def test_exception_includes_traceback(self, stream):
        log = get_logger("unit")
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("failed", stage="test")
        out = stream.getvalue()
        assert "failed stage=test" in out
        assert "ValueError: boom" in out


class TestLevels:
    def test_level_filtering(self):
        buffer = io.StringIO()
        configure_logging("error", stream=buffer)
        try:
            log = get_logger("unit")
            log.info("hidden")
            log.error("shown")
            assert "hidden" not in buffer.getvalue()
            assert "shown" in buffer.getvalue()
        finally:
            configure_logging("warning")

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_reconfigure_does_not_stack_handlers(self):
        configure_logging("warning")
        configure_logging("warning")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1


class TestNamespace:
    def test_loggers_live_under_repro(self):
        assert get_logger("atpg").name == "repro.atpg"
        assert get_logger().name == "repro"
