"""ISA-level validation of the ARM-2-like benchmark processor.

A tiny assembler drives the synthesized netlist through the logic simulator
and checks architectural behaviour: register writes, forwarding, loads,
stores, branches, exceptions and the peripheral blocks.
"""

import pytest

from repro.atpg.simulator import LogicSimulator
from repro.designs import arm2_design
from repro.synth import synthesize


# ---------------------------------------------------------------------------
# Tiny assembler for the 16-bit ISA (see designs/arm2.py).
# ---------------------------------------------------------------------------

OPS = {
    "ADD": 0x0, "SUB": 0x1, "AND": 0x2, "OR": 0x3, "XOR": 0x4,
    "SHL": 0x5, "SHR": 0x6, "MOVI": 0x7, "LD": 0x8, "ST": 0x9,
    "BEQ": 0xA, "CMP": 0xB, "SWI": 0xC, "RFE": 0xD,
}


def rrr(op, rd, ra, rb):
    return (OPS[op] << 12) | (rd << 9) | (ra << 6) | (rb << 3)


def movi(rd, imm8):
    return (OPS["MOVI"] << 12) | (rd << 9) | (imm8 & 0xFF)


def ld(rd, ra, imm6):
    return (OPS["LD"] << 12) | (rd << 9) | (ra << 6) | (imm6 & 0x3F)


def st(rb, ra, imm6):
    return (OPS["ST"] << 12) | (ra << 6) | ((imm6 & 0x3F) >> 3 << 3) | (
        imm6 & 0x3F
    ) if False else (OPS["ST"] << 12) | (ra << 6) | (imm6 & 0x3F) | (rb << 9)


def st_rb(rb, ra, imm6):
    # ST reads the stored value from the rb field (inst[5:3]).
    return (OPS["ST"] << 12) | (ra << 6) | (rb << 3) | 0


def beq(target8):
    return (OPS["BEQ"] << 12) | (target8 & 0xFF)


def cmp_(ra, rb):
    return (OPS["CMP"] << 12) | (ra << 6) | (rb << 3)


def swi():
    return OPS["SWI"] << 12


def rfe():
    return OPS["RFE"] << 12


NOP = movi(7, 0)  # MOVI r7, 0 used as a no-op filler (r7 reserved)
UNDEF = 0xF000


class ArmRunner:
    """Drives the synthesized `arm` netlist one instruction per cycle."""

    def __init__(self):
        self.netlist = synthesize(arm2_design())
        self.sim = LogicSimulator(self.netlist)
        self._default = {
            self.netlist.net_name(pi): 0 for pi in self.netlist.pis
        }
        self.trace = []

    def reset(self):
        bits = dict(self._default)
        bits["rst"] = 1
        self._out = self.sim.step_scalar(bits)

    def cycle(self, inst=NOP, mem_rdata=0, **pins):
        bits = dict(self._default)
        for i in range(16):
            bits[f"inst[{i}]"] = (inst >> i) & 1
            bits[f"mem_rdata[{i}]"] = (mem_rdata >> i) & 1
        for name, value in pins.items():
            base = name.split("[")[0]
            if name in bits:
                bits[name] = value
            else:
                width = sum(1 for k in bits if k.startswith(f"{base}["))
                for i in range(width):
                    bits[f"{base}[{i}]"] = (value >> i) & 1
        self._out = self.sim.step_scalar(bits)
        self.trace.append(self._out)
        return self._out

    def word(self, base, width=16):
        value = 0
        for i in range(width):
            bit = self._out.get(f"{base}[{i}]")
            if bit is None:
                return None
            value |= bit << i
        return value

    def bit(self, name):
        return self._out.get(name)


@pytest.fixture(scope="module")
def cpu():
    return ArmRunner()


def run_program(cpu, instructions, extra_nops=2):
    """Reset, feed instructions one per cycle, then drain the pipeline."""
    cpu.reset()
    for inst in instructions:
        cpu.cycle(inst)
    for _ in range(extra_nops):
        cpu.cycle(NOP)


class TestBasicExecution:
    def test_reset_clears_pc(self, cpu):
        cpu.reset()
        cpu.cycle(NOP)
        # Outputs are sampled during the cycle: the first fetch is at pc=0.
        assert cpu.word("inst_addr", 8) == 0
        cpu.cycle(NOP)
        assert cpu.word("inst_addr", 8) == 1

    def test_movi_then_store(self, cpu):
        run_program(cpu, [movi(1, 0x5A)])
        # ST r1 -> mem_wdata: rb field reads register 1.
        cpu.cycle(st_rb(1, 0, 0))
        assert cpu.word("mem_wdata") == 0x5A
        assert cpu.bit("mem_we") == 1

    def test_alu_add(self, cpu):
        run_program(cpu, [movi(1, 20), movi(2, 22)])
        cpu.cycle(rrr("ADD", 3, 1, 2))
        assert cpu.word("result_bus") == 42

    def test_alu_sub_and_logic(self, cpu):
        run_program(cpu, [movi(1, 0xF0), movi(2, 0x0F)])
        cpu.cycle(rrr("SUB", 3, 1, 2))
        assert cpu.word("result_bus") == 0xF0 - 0x0F
        cpu.cycle(rrr("OR", 3, 1, 2))
        assert cpu.word("result_bus") == 0xFF
        cpu.cycle(rrr("AND", 3, 1, 2))
        assert cpu.word("result_bus") == 0x00
        cpu.cycle(rrr("XOR", 3, 1, 1))
        assert cpu.word("result_bus") == 0x00

    def test_shifts(self, cpu):
        run_program(cpu, [movi(1, 0x03), movi(2, 2)])
        cpu.cycle(rrr("SHL", 3, 1, 2))
        assert cpu.word("result_bus") == 0x0C
        cpu.cycle(rrr("SHR", 3, 1, 2))
        assert cpu.word("result_bus") == 0x00

    def test_forwarding_back_to_back(self, cpu):
        # r3 = r1 + r2 immediately followed by r4 = r3 + r1 requires the
        # forwarding unit (write-back happens one cycle later).
        run_program(cpu, [movi(1, 5), movi(2, 7)])
        cpu.cycle(rrr("ADD", 3, 1, 2))     # r3 = 12
        cpu.cycle(rrr("ADD", 4, 3, 1))     # needs forwarded r3
        assert cpu.word("result_bus") == 17

    def test_load_writes_register(self, cpu):
        run_program(cpu, [movi(1, 0x10)])
        # The data memory is combinational: rdata is consumed in the same
        # cycle as the LD and lands in the writeback stage register.
        cpu.cycle(ld(2, 1, 4), mem_rdata=0xBEE)  # r2 = mem[r1 + 4]
        assert cpu.word("mem_addr") == 0x14
        assert cpu.bit("mem_re") == 1
        cpu.cycle(st_rb(2, 0, 0))          # store r2 (forwarded from WB)
        assert cpu.word("mem_wdata") == 0xBEE


class TestControlFlow:
    def test_branch_taken_on_zero(self, cpu):
        cpu.reset()
        cpu.cycle(movi(1, 3))
        cpu.cycle(cmp_(1, 1))              # equal -> z=1
        cpu.cycle(NOP)
        cpu.cycle(beq(0x40))
        cpu.cycle(NOP)
        assert cpu.word("inst_addr", 8) == 0x40

    def test_branch_not_taken(self, cpu):
        cpu.reset()
        cpu.cycle(movi(1, 3))
        cpu.cycle(movi(2, 4))
        cpu.cycle(cmp_(1, 2))              # not equal -> z=0
        cpu.cycle(NOP)
        before = cpu.word("inst_addr", 8)
        cpu.cycle(beq(0x40))
        cpu.cycle(NOP)
        assert cpu.word("inst_addr", 8) == before + 2

    def test_swi_jumps_to_vector(self, cpu):
        cpu.reset()
        cpu.cycle(NOP)
        cpu.cycle(swi())
        cpu.cycle(NOP)
        assert cpu.word("inst_addr", 8) == 0x08
        assert cpu.bit("supervisor") == 1

    def test_undef_jumps_to_vector(self, cpu):
        cpu.reset()
        cpu.cycle(NOP)
        cpu.cycle(UNDEF)
        cpu.cycle(NOP)
        assert cpu.word("inst_addr", 8) == 0x04

    def test_rfe_returns(self, cpu):
        cpu.reset()
        cpu.cycle(NOP)     # pc=0 executing, pc -> 1
        cpu.cycle(swi())   # at pc=1: epc <- 1, pc <- 8
        cpu.cycle(rfe())   # pc <- epc = 1
        cpu.cycle(NOP)
        assert cpu.word("inst_addr", 8) == 1
        assert cpu.bit("supervisor") == 0

    def test_exc_count_increments(self, cpu):
        cpu.reset()
        cpu.cycle(NOP)
        cpu.cycle(swi())
        cpu.cycle(rfe())
        cpu.cycle(swi())
        cpu.cycle(NOP)
        assert cpu.word("exc_count", 8) == 2


class TestPeripherals:
    def test_mac_multiply_accumulate(self, cpu):
        cpu.reset()
        cpu.cycle(NOP, cp_a=3, cp_b=4, cp_op=1, cp_en=1)   # acc = 12
        cpu.cycle(NOP, cp_a=5, cp_b=6, cp_op=2, cp_en=1)   # acc += 30
        cpu.cycle(NOP)
        assert cpu.word("cp_result", 32) == 42
        cpu.cycle(NOP, cp_op=3, cp_en=1)                   # clear
        cpu.cycle(NOP)
        assert cpu.word("cp_result", 32) == 0
        assert cpu.bit("cp_zero") == 1

    def test_timer_raises_irq_and_core_takes_it(self, cpu):
        cpu.reset()
        # compare=2, prescale=0: counter hits 2 after two enabled cycles.
        for _ in range(2):
            cpu.cycle(NOP, tmr_enable=1, tmr_compare=2)
        cpu.cycle(NOP, tmr_enable=1, tmr_compare=2)
        # IRQ pends in exc, next instruction traps to vector 0x0C.
        cpu.cycle(NOP, tmr_enable=0)
        cpu.cycle(NOP)
        assert cpu.bit("supervisor") == 1

    def test_dma_generates_addresses(self, cpu):
        cpu.reset()
        cpu.cycle(NOP, dma_base=0x100, dma_len=3, dma_stride=1,
                  dma_start=1)
        addrs = []
        done_seen = False
        for _ in range(6):
            # The stride pins must stay asserted while stepping.
            cpu.cycle(NOP, dma_stride=1)
            addrs.append(cpu.word("dma_addr"))
            done_seen = done_seen or cpu.bit("dma_done") == 1
        assert addrs[:3] == [0x100, 0x102, 0x104]
        assert done_seen

    def test_gpio_set_clear(self, cpu):
        cpu.reset()
        cpu.cycle(NOP, gpio_set=0x0F)
        cpu.cycle(NOP)
        assert cpu.word("gpio_out", 8) == 0x0F
        cpu.cycle(NOP, gpio_clr=0x03)
        cpu.cycle(NOP)
        assert cpu.word("gpio_out", 8) == 0x0C

    def test_crc_changes_with_data(self, cpu):
        cpu.reset()
        cpu.cycle(NOP, crc_clear=1)
        cpu.cycle(NOP, crc_data=0xA5, crc_en=1)
        cpu.cycle(NOP)
        first = cpu.word("crc_value")
        cpu.cycle(NOP, crc_data=0x5A, crc_en=1)
        cpu.cycle(NOP)
        assert cpu.word("crc_value") != first

    def test_pwm_duty(self, cpu):
        cpu.reset()
        highs = 0
        for _ in range(16):
            cpu.cycle(NOP, pwm_en=1, duty0=8)
            highs += cpu.bit("pwm_out[0]")
        # duty 8/256 -> high during counter < 8 (we observe early cycles).
        assert highs >= 7
