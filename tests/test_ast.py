"""Unit tests for AST helper methods (signals, defined/used, walks)."""

import pytest

from repro.verilog import ast
from repro.verilog.parser import parse_source


def module_of(src):
    return parse_source(src).modules[0]


class TestLhsHelpers:
    def test_ident_target(self):
        assert ast.lhs_base_names(ast.Ident(name="y")) == {"y"}
        assert ast.lhs_index_signals(ast.Ident(name="y")) == set()

    def test_bit_select_target(self):
        target = ast.BitSelect(name="y", index=ast.Ident(name="i"))
        assert ast.lhs_base_names(target) == {"y"}
        assert ast.lhs_index_signals(target) == {"i"}

    def test_part_select_target(self):
        target = ast.PartSelect(
            name="y", msb=ast.Number(value=3), lsb=ast.Number(value=0)
        )
        assert ast.lhs_base_names(target) == {"y"}
        assert ast.lhs_index_signals(target) == set()

    def test_concat_target(self):
        target = ast.Concat(parts=[ast.Ident(name="a"), ast.Ident(name="b")])
        assert ast.lhs_base_names(target) == {"a", "b"}

    def test_invalid_target_raises(self):
        with pytest.raises(TypeError):
            ast.lhs_base_names(ast.Number(value=1))


class TestStatementDefUse:
    def test_if_collects_both_branches(self):
        mod = module_of("""
        module m(input c, input a, output reg y, output reg z);
          always @(*)
            if (c) y = a;
            else z = a;
        endmodule
        """)
        stmt = mod.always_blocks[0].body
        assert stmt.defined() == {"y", "z"}
        assert stmt.used() == {"c", "a"}

    def test_case_collects_selector_and_labels(self):
        mod = module_of("""
        module m(input [1:0] s, input a, output reg y);
          always @(*)
            case (s)
              2'd0: y = a;
              default: y = 1'b0;
            endcase
        endmodule
        """)
        stmt = mod.always_blocks[0].body
        assert stmt.used() == {"s", "a"}
        assert stmt.defined() == {"y"}

    def test_for_collects_loop_variable(self):
        mod = module_of("""
        module m(input a, output reg [3:0] y);
          integer i;
          always @(*)
            for (i = 0; i < 4; i = i + 1)
              y[i] = a;
        endmodule
        """)
        stmt = mod.always_blocks[0].body
        assert "i" in stmt.defined()
        assert "y" in stmt.defined()
        assert {"i", "a"} <= stmt.used()

    def test_sequential_always_uses_clock(self):
        mod = module_of("""
        module m(input clk, input d, output reg q);
          always @(posedge clk) q <= d;
        endmodule
        """)
        always = mod.always_blocks[0]
        assert "clk" in always.used()
        assert always.defined() == {"q"}

    def test_combinational_always_ignores_sensitivity_names(self):
        mod = module_of("""
        module m(input d, output reg q);
          always @(d) q = d;
        endmodule
        """)
        assert mod.always_blocks[0].used() == {"d"}

    def test_gate_def_use(self):
        mod = module_of("""
        module m(input a, input b, output y);
          and g(y, a, b);
        endmodule
        """)
        gate = mod.gates[0]
        assert gate.defined() == {"y"}
        assert gate.used() == {"a", "b"}

    def test_cont_assign_index_is_use(self):
        mod = module_of("""
        module m(input [1:0] i, input a, output [3:0] y);
          assign y[i] = a;
        endmodule
        """)
        assign = mod.assigns[0]
        assert assign.defined() == {"y"}
        assert assign.used() == {"i", "a"}


class TestWalks:
    def test_walk_exprs_visits_all(self):
        mod = module_of("""
        module m(input a, input b, output y);
          assign y = (a & b) | {2{a ^ b}};
        endmodule
        """)
        nodes = list(ast.walk_exprs(mod.assigns[0].rhs))
        idents = [n.name for n in nodes if isinstance(n, ast.Ident)]
        assert sorted(idents) == ["a", "a", "b", "b"]

    def test_walk_stmts_visits_nested(self):
        mod = module_of("""
        module m(input c, input a, output reg y);
          always @(*)
            if (c) begin
              y = a;
              if (a) y = 1'b0;
            end else
              y = 1'b1;
        endmodule
        """)
        stmts = list(ast.walk_stmts(mod.always_blocks[0].body))
        assigns = [s for s in stmts if isinstance(s, ast.AssignStmt)]
        assert len(assigns) == 3


class TestModuleAccessors:
    def test_port_lookup(self):
        mod = module_of("module m(input a, output y); endmodule")
        assert mod.port("a").direction == "input"
        with pytest.raises(KeyError):
            mod.port("zz")

    def test_source_duplicate_module_rejected_on_extend(self):
        src1 = parse_source("module m(); endmodule")
        src2 = parse_source("module m(); endmodule")
        with pytest.raises(ValueError):
            src1.extend(src2)

    def test_source_lookup_missing(self):
        src = parse_source("module m(); endmodule")
        with pytest.raises(KeyError):
            src.module("nope")
