"""Extractor tests on small hand-analyzable hierarchical designs."""


from repro.core.extractor import (
    ExtractionMode,
    FunctionalConstraintExtractor,
    MutSpec,
)
from repro.hierarchy import Design
from repro.verilog.parser import parse_source


def extract(src, module, path, mode=ExtractionMode.COMPOSE, top=None):
    design = Design(parse_source(src), top=top)
    extractor = FunctionalConstraintExtractor(design, mode)
    return extractor.extract(MutSpec(module=module, path=path)), extractor


# A design with a MUT plus relevant and irrelevant surrounding logic.
SLICE_SRC = """
module mut(input [3:0] m_in, output [3:0] m_out);
  assign m_out = ~m_in;
endmodule

module other(input [3:0] i, output [3:0] o);
  assign o = i + 4'd1;
endmodule

module top(input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] w);
  wire [3:0] pre;
  wire [3:0] post;
  assign pre = a & b;
  mut u_mut(.m_in(pre), .m_out(post));
  assign y = post | b;
  // Entirely unrelated cone:
  other u_other(.i(b), .o(w));
endmodule
"""


class TestSlicing:
    def test_relevant_logic_kept(self):
        result, _ = extract(SLICE_SRC, "mut", "u_mut.")
        top_marks = result.marks["top"]
        mod = Design(parse_source(SLICE_SRC)).module("top")
        kept_targets = {
            next(iter(mod.assigns[i].defined())) for i in top_marks.assigns
        }
        assert "pre" in kept_targets    # justification of the MUT input
        assert "y" in kept_targets      # propagation of the MUT output

    def test_irrelevant_instance_dropped(self):
        result, _ = extract(SLICE_SRC, "mut", "u_mut.")
        assert "other" not in result.kept_modules()
        assert "u_other" not in result.marks["top"].instances

    def test_mut_kept_whole(self):
        result, _ = extract(SLICE_SRC, "mut", "u_mut.")
        assert result.marks["mut"].whole

    def test_chip_interface_recorded(self):
        result, _ = extract(SLICE_SRC, "mut", "u_mut.")
        assert result.chip_inputs == {"a", "b"}
        assert result.chip_outputs == {"y"}
        assert "w" not in result.chip_outputs


ENCLOSURE_SRC = """
module mut(input m_in, output m_out);
  assign m_out = ~m_in;
endmodule

module top(input sel, input d0, input d1, input unused_in,
           output y, output unrelated);
  reg pre;
  always @(*)
    if (sel) pre = d0;
    else pre = d1;
  mut u_mut(.m_in(pre), .m_out(y));
  assign unrelated = unused_in;
endmodule
"""


class TestEnclosures:
    def test_condition_signals_justified(self):
        result, _ = extract(ENCLOSURE_SRC, "mut", "u_mut.")
        # sel steers the mux feeding the MUT: it must be a chip input
        # constraint even though it never appears on an assignment RHS.
        assert {"sel", "d0", "d1"} <= result.chip_inputs
        assert "unused_in" not in result.chip_inputs

    def test_unrelated_assign_dropped(self):
        result, _ = extract(ENCLOSURE_SRC, "mut", "u_mut.")
        mod = Design(parse_source(ENCLOSURE_SRC)).module("top")
        kept = {
            next(iter(mod.assigns[i].defined()))
            for i in result.marks["top"].assigns
        }
        assert "unrelated" not in kept


SIBLING_SRC = """
module mut(input m_in, output m_out);
  assign m_out = ~m_in;
endmodule

module sibling(input thin_in, input [7:0] fat_in,
               output thin_out, output [7:0] fat_out);
  assign thin_out = ~thin_in;
  assign fat_out = fat_in + 8'd1;
endmodule

module top(input a, input [7:0] cfg, output y, output [7:0] dbg);
  wire t;
  mut u_mut(.m_in(t), .m_out(y));
  sibling u_sib(.thin_in(a), .fat_in(cfg), .thin_out(t), .fat_out(dbg));
endmodule
"""


class TestModes:
    def test_compose_slices_sibling(self):
        result, _ = extract(SIBLING_SRC, "mut", "u_mut.",
                            ExtractionMode.COMPOSE)
        sib = result.marks["sibling"]
        assert not sib.whole
        # Only the thin path is kept: the fat adder is out of the cone.
        mod = Design(parse_source(SIBLING_SRC)).module("sibling")
        kept = {
            next(iter(mod.assigns[i].defined())) for i in sib.assigns
        }
        assert kept == {"thin_out"}
        assert "cfg" not in result.chip_inputs

    def test_conventional_keeps_sibling_whole(self):
        result, _ = extract(SIBLING_SRC, "mut", "u_mut.",
                            ExtractionMode.CONVENTIONAL)
        assert result.marks["sibling"].whole
        # Whole sibling forces justification of ALL its inputs.
        assert "cfg" in result.chip_inputs

    def test_conventional_superset_of_compose(self):
        comp, _ = extract(SIBLING_SRC, "mut", "u_mut.",
                          ExtractionMode.COMPOSE)
        conv, _ = extract(SIBLING_SRC, "mut", "u_mut.",
                          ExtractionMode.CONVENTIONAL)
        assert comp.chip_inputs <= conv.chip_inputs
        assert comp.chip_outputs <= conv.chip_outputs


class TestReuse:
    TWO_MUTS = """
    module mut_a(input i, output o);
      assign o = ~i;
    endmodule
    module mut_b(input i, output o);
      assign o = ~i;
    endmodule
    module shared(input [7:0] x, output s);
      assign s = ^x;
    endmodule
    module top(input [7:0] x, output ya, output yb);
      wire s;
      shared u_sh(.x(x), .s(s));
      mut_a u_a(.i(s), .o(ya));
      mut_b u_b(.i(s), .o(yb));
    endmodule
    """

    def test_compose_reuses_tasks_across_muts(self):
        design = Design(parse_source(self.TWO_MUTS))
        extractor = FunctionalConstraintExtractor(design,
                                                  ExtractionMode.COMPOSE)
        first = extractor.extract(MutSpec(module="mut_a", path="u_a."))
        second = extractor.extract(MutSpec(module="mut_b", path="u_b."))
        assert first.tasks_run > 0
        # The shared cone was computed once: the second extraction mostly
        # hits the cache.
        assert second.tasks_reused > 0
        assert second.tasks_run < first.tasks_run

    def test_reused_marks_still_complete(self):
        design = Design(parse_source(self.TWO_MUTS))
        extractor = FunctionalConstraintExtractor(design,
                                                  ExtractionMode.COMPOSE)
        extractor.extract(MutSpec(module="mut_a", path="u_a."))
        second = extractor.extract(MutSpec(module="mut_b", path="u_b."))
        # Despite the cache hits, mut_b's result still contains the shared
        # module's slice (the reuse-correctness property).
        assert "shared" in second.kept_modules()
        assert second.chip_inputs == {"x"}

    def test_conventional_does_not_reuse(self):
        design = Design(parse_source(self.TWO_MUTS))
        extractor = FunctionalConstraintExtractor(
            design, ExtractionMode.CONVENTIONAL
        )
        extractor.extract(MutSpec(module="mut_a", path="u_a."))
        second = extractor.extract(MutSpec(module="mut_b", path="u_b."))
        assert second.tasks_reused == 0


class TestDiagnostics:
    def test_empty_ud_chain_reported(self):
        src = """
        module mut(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire floating;
          mut u_mut(.m_in(floating), .m_out(y));
        endmodule
        """.replace("m_in", "i").replace("m_out", "o")
        result, _ = extract(src, "mut", "u_mut.")
        kinds = {(t.kind, t.signal) for t in result.empty_chains}
        assert ("no_driver", "floating") in kinds

    def test_empty_du_chain_reported(self):
        src = """
        module mut(input i, output o);
          assign o = ~i;
        endmodule
        module top(input a, output y);
          wire dead;
          mut u_mut(.i(a), .o(dead));
          assign y = a;
        endmodule
        """
        result, _ = extract(src, "mut", "u_mut.")
        kinds = {(t.kind, t.signal) for t in result.empty_chains}
        assert ("no_propagation", "dead") in kinds

    def test_constant_defs_recorded(self):
        src = """
        module mut(input [1:0] ctl, output o);
          assign o = ctl[0] ^ ctl[1];
        endmodule
        module top(input [1:0] sel, output y);
          reg [1:0] ctl;
          always @(*)
            case (sel)
              2'd0: ctl = 2'b01;
              2'd1: ctl = 2'b10;
              default: ctl = 2'b00;
            endcase
          mut u_mut(.ctl(ctl), .o(y));
        endmodule
        """
        result, _ = extract(src, "mut", "u_mut.")
        assert ("top", "ctl") in result.constant_defs
        assert len(result.constant_defs[("top", "ctl")]) == 3


class TestStatementCounts:
    def test_total_statements_positive(self):
        result, _ = extract(SLICE_SRC, "mut", "u_mut.")
        assert result.total_statements() > 0

    def test_result_metadata(self):
        result, _ = extract(SLICE_SRC, "mut", "u_mut.")
        assert result.mut.module == "mut"
        assert result.mode is ExtractionMode.COMPOSE
        assert result.extraction_seconds >= 0
