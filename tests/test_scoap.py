"""SCOAP testability measure tests against hand-computed values."""


from repro.atpg.scoap import scoap_measures
from repro.designs import counter_source
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.verilog.parser import parse_source


class TestCombinationalControllability:
    def test_pi_costs_one(self):
        nl = Netlist()
        a = nl.add_pi("a")
        nl.add_po(a, "y")
        m = scoap_measures(nl)
        assert m.cc0[a] == 1
        assert m.cc1[a] == 1

    def test_and_gate(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.AND, (a, b))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.cc1[y] == 1 + 1 + 1  # both inputs to 1, +1
        assert m.cc0[y] == 1 + 1      # cheapest input to 0, +1

    def test_or_gate(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.OR, (a, b))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.cc0[y] == 3
        assert m.cc1[y] == 2

    def test_not_swaps(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.NOT, (a,))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.cc0[y] == 2
        assert m.cc1[y] == 2

    def test_xor_gate(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.XOR, (a, b))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        # even: 00 or 11 -> 1+1+1; odd: 01 or 10 -> same here.
        assert m.cc0[y] == 3
        assert m.cc1[y] == 3

    def test_deep_chain_costs_grow(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        c = nl.add_pi("c")
        t = nl.add_gate(GateType.AND, (a, b))
        y = nl.add_gate(GateType.AND, (t, c))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.cc1[y] == m.cc1[t] + 1 + 1
        assert m.cc1[y] > m.cc1[t]

    def test_constants(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.AND, (a, CONST1))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.cc0[CONST0] == 0
        assert m.cc1[CONST1] == 0
        assert m.cc1[y] == 2  # a=1 (1) + const1 (0) + 1


class TestObservability:
    def test_po_observability_zero(self):
        nl = Netlist()
        a = nl.add_pi("a")
        nl.add_po(a, "y")
        m = scoap_measures(nl)
        assert m.co[a] == 0

    def test_and_side_input_cost(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.AND, (a, b))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        # To observe a: y observable (0) + set b=1 (1) + 1.
        assert m.co[a] == 2
        assert m.co[b] == 2

    def test_unobservable_net_has_huge_cost(self):
        nl = Netlist()
        a = nl.add_pi("a")
        dangling = nl.add_gate(GateType.NOT, (a,))
        y = nl.add_gate(GateType.BUF, (a,))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.co.get(dangling, 10 ** 9) >= 10 ** 9

    def test_deeper_nets_harder_to_observe(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        c = nl.add_pi("c")
        t = nl.add_gate(GateType.AND, (a, b))
        y = nl.add_gate(GateType.AND, (t, c))
        nl.add_po(y, "y")
        m = scoap_measures(nl)
        assert m.co[a] > m.co[t] >= m.co[y]


class TestSequentialIteration:
    def test_counter_measures_finite(self):
        nl = synthesize(Design(parse_source(counter_source())))
        m = scoap_measures(nl)
        for dff in nl.dffs():
            assert m.cc0[dff.output] < 10 ** 9
            assert m.cc1[dff.output] < 10 ** 9

    def test_hard_lists(self):
        nl = synthesize(Design(parse_source(counter_source())))
        m = scoap_measures(nl)
        hardest_c = m.hardest_to_control(nl, count=5)
        hardest_o = m.hardest_to_observe(nl, count=5)
        assert len(hardest_c) == 5
        assert len(hardest_o) == 5
        # Results sorted by decreasing cost.
        costs_c = [c for _, c in hardest_c]
        assert costs_c == sorted(costs_c, reverse=True)
