"""Equivalence checker tests."""

import pytest

from repro.designs import adder_source, counter_source, small_designs
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.elaborate import Elaborator
from repro.synth.equiv import EquivError, build_miter, check_equivalence
from repro.synth.netlist import GateType, Netlist
from repro.verilog.parser import parse_source


def raw_and_optimized(src, top=None):
    design = Design(parse_source(src), top=top)
    raw = Elaborator(design).synthesize()
    return raw, synthesize(design)


class TestProofs:
    @pytest.mark.parametrize("name", ["adder", "counter", "fsm", "parity",
                                      "shifter", "mux_tree"])
    def test_optimizer_preserves_function(self, name):
        raw, opt = raw_and_optimized(small_designs()[name])
        result = check_equivalence(raw, opt)
        assert result.equivalent
        assert result.proved_outputs == result.checked_outputs > 0

    def test_same_netlist_equivalent(self):
        nl = synthesize(Design(parse_source(adder_source())))
        assert check_equivalence(nl, nl.clone()).equivalent

    def test_demorgan_equivalence(self):
        a = Netlist("a")
        x, y = a.add_pi("x"), a.add_pi("y")
        a.add_po(a.add_gate(GateType.NAND, (x, y)), "out")
        b = Netlist("b")
        x2, y2 = b.add_pi("x"), b.add_pi("y")
        nx = b.add_gate(GateType.NOT, (x2,))
        ny = b.add_gate(GateType.NOT, (y2,))
        b.add_po(b.add_gate(GateType.OR, (nx, ny)), "out")
        assert check_equivalence(a, b).equivalent


class TestRefutations:
    def test_distinguishing_input_found(self):
        a = Netlist("a")
        x, y = a.add_pi("x"), a.add_pi("y")
        a.add_po(a.add_gate(GateType.AND, (x, y)), "out")
        b = Netlist("b")
        x2, y2 = b.add_pi("x"), b.add_pi("y")
        b.add_po(b.add_gate(GateType.OR, (x2, y2)), "out")
        result = check_equivalence(a, b)
        assert not result.equivalent
        assert result.mismatched_output == "out"
        cex = result.counterexample
        # AND and OR differ exactly when inputs differ.
        assert cex["x"] != cex["y"]

    def test_broken_optimization_detected(self):
        # A deliberately wrong "optimization": drop one adder input bit.
        src_ok = adder_source(4)
        src_bad = src_ok.replace("assign full = a + b + cin;",
                                 "assign full = a + b;")
        nl_ok = synthesize(Design(parse_source(src_ok)))
        nl_bad = synthesize(Design(parse_source(src_bad)))
        result = check_equivalence(nl_ok, nl_bad)
        assert not result.equivalent
        assert result.counterexample["cin"] == 1

    def test_sequential_next_state_checked(self):
        # Counter with en vs without: differs in next-state logic.
        src_b = counter_source().replace("else if (en)", "else if (1'b1)")
        nl_a = synthesize(Design(parse_source(counter_source())))
        nl_b = synthesize(Design(parse_source(src_b)))
        result = check_equivalence(nl_a, nl_b)
        assert not result.equivalent
        assert "$next" in result.mismatched_output


class TestInterfaceChecks:
    def test_pi_mismatch_rejected(self):
        a = Netlist("a")
        a.add_po(a.add_pi("x"), "out")
        b = Netlist("b")
        b.add_po(b.add_pi("z"), "out")
        with pytest.raises(EquivError):
            check_equivalence(a, b)

    def test_po_mismatch_rejected(self):
        a = Netlist("a")
        a.add_po(a.add_pi("x"), "out")
        b = Netlist("b")
        b.add_po(b.add_pi("x"), "different")
        with pytest.raises(EquivError):
            check_equivalence(a, b)


class TestMiterStructure:
    def test_miter_outputs_per_po(self):
        nl = synthesize(Design(parse_source(adder_source(2))))
        miter, xors = build_miter(nl, nl.clone())
        assert len(xors) == len(nl.pos)
        assert all(name.startswith("diff$") for name in xors)
