"""Shared execution knobs: SIGTERM handling and the jobs helper module."""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.jobs import (
    SIGTERM_EXIT_CODE,
    Terminated,
    install_sigterm_handler,
    resolve_jobs,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(
    __file__))), "src")


def test_sigterm_exit_code_is_conventional():
    assert SIGTERM_EXIT_CODE == 128 + signal.SIGTERM


def test_terminated_records_signal_number():
    exc = Terminated(signal.SIGTERM)
    assert exc.signum == signal.SIGTERM
    assert "15" in str(exc)


def test_install_raises_terminated_in_main_thread():
    previous = signal.getsignal(signal.SIGTERM)
    try:
        assert install_sigterm_handler() is True
        with pytest.raises(Terminated):
            os.kill(os.getpid(), signal.SIGTERM)
    finally:
        signal.signal(signal.SIGTERM, previous)


def test_install_refuses_off_main_thread():
    import threading

    results = []
    thread = threading.Thread(
        target=lambda: results.append(install_sigterm_handler()))
    thread.start()
    thread.join()
    assert results == [False]


def test_cli_sigterm_exits_143_with_metrics_flushed(tmp_path):
    """SIGTERM mid-command -> exit 143, `terminated` on stderr, metrics
    still written.  The long-running command is simulated by hijacking a
    command handler in a subprocess, so the test is timing-independent."""
    metrics_path = tmp_path / "partial-metrics.json"
    script = textwrap.dedent(f"""
        import sys, time
        sys.path.insert(0, {SRC!r})
        import repro.cli as cli
        from repro.obs import counter

        def hang(args):
            counter("test.partial_work").inc(3)
            print("ready", flush=True)
            time.sleep(60)
            return 0

        cli._COMMANDS["bench"] = hang
        sys.exit(cli.main(["bench", "--quick",
                           "--metrics-out", {str(metrics_path)!r}]))
    """)
    proc = subprocess.Popen([sys.executable, "-c", script], text=True,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    assert proc.stdout.readline().strip() == "ready"
    proc.send_signal(signal.SIGTERM)
    _out, err = proc.communicate(timeout=30)
    assert proc.returncode == SIGTERM_EXIT_CODE
    assert "terminated" in err
    import json
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["test.partial_work"]["value"] == 3


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    with pytest.raises(ValueError):
        resolve_jobs()
