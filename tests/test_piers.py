"""PIER identification tests."""

import pytest

from repro.core.piers import find_piers, pier_q_nets
from repro.designs import arm2_design
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source


def piers_of(src, top=None, **kw):
    design = Design(parse_source(src), top=top)
    return {(p.module, p.signal): p for p in find_piers(design, **kw)}


class TestDirectAccess:
    SRC = """
    module top(input clk, input [7:0] din, input load,
               output [7:0] dout);
      reg [7:0] r;
      always @(posedge clk)
        if (load) r <= din;
      assign dout = r;
    endmodule
    """

    def test_directly_accessible_register(self):
        piers = piers_of(self.SRC)
        info = piers[("top", "r")]
        assert info.loadable and info.storable and info.is_pier


class TestBlockedPaths:
    def test_unloadable_register(self):
        src = """
        module top(input clk, input rst, output [3:0] q);
          reg [3:0] cnt;
          always @(posedge clk)
            if (rst) cnt <= 4'd0;
            else cnt <= cnt + 4'd1;
          assign q = cnt;
        endmodule
        """
        piers = piers_of(src)
        info = piers[("top", "cnt")]
        # Counter state is storable but not loadable from any data pin
        # (its only sources are the constant reset and its own feedback).
        assert info.storable
        assert not info.loadable

    def test_unstorable_register(self):
        # A register reaching the PO only through a constant-0 AND would
        # still have a structural du path, so use a truly dead register:
        src_dead = """
        module top(input clk, input [3:0] din, output y);
          reg [3:0] shadow;
          always @(posedge clk) shadow <= din;
          assign y = din[0];
        endmodule
        """
        piers = piers_of(src_dead)
        info = piers[("top", "shadow")]
        assert info.loadable
        assert not info.storable


class TestHopBudget:
    PIPELINED = """
    module top(input clk, input [3:0] din, output [3:0] dout);
      reg [3:0] stage1;
      reg [3:0] r;
      always @(posedge clk) begin
        stage1 <= din;
        r <= stage1;
      end
      assign dout = r;
    endmodule
    """

    def test_one_hop_load_allowed_by_default(self):
        piers = piers_of(self.PIPELINED)
        assert piers[("top", "r")].loadable

    def test_zero_hop_budget_blocks_pipelined_load(self):
        piers = piers_of(self.PIPELINED, load_hops=0)
        assert not piers[("top", "r")].loadable
        # stage1 is still directly loadable.
        assert piers[("top", "stage1")].loadable

    def test_store_hops(self):
        src = """
        module top(input clk, input [3:0] din, output [3:0] dout);
          reg [3:0] r;
          reg [3:0] out_stage;
          always @(posedge clk) begin
            r <= din;
            out_stage <= r;
          end
          assign dout = out_stage;
        endmodule
        """
        assert not piers_of(src, store_hops=0)[("top", "r")].storable
        assert piers_of(src, store_hops=1)[("top", "r")].storable


class TestHierarchicalAccess:
    SRC = """
    module cell(input clk, input we, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk)
        if (we) r <= d;
      assign q = r;
    endmodule
    module top(input clk, input we, input [3:0] din, output [3:0] dout);
      cell u_cell(.clk(clk), .we(we), .d(din), .q(dout));
    endmodule
    """

    def test_register_inside_submodule(self):
        piers = piers_of(self.SRC)
        assert piers[("cell", "r")].is_pier


class TestArm2Piers:
    @pytest.fixture(scope="class")
    def arm(self):
        design = arm2_design()
        return design, find_piers(design)

    def test_register_file_is_pier(self, arm):
        _, piers = arm
        info = {(p.module, p.signal): p for p in piers}
        assert info[("reg16", "r")].is_pier

    def test_flags_not_a_pier(self, arm):
        _, piers = arm
        info = {(p.module, p.signal): p for p in piers}
        # Condition flags can be set through a compare-with-immediate (so
        # they are loadable) but only influence the PC — there is no
        # combinational store path to any pin.
        flags = info[("datapath", "flags")]
        assert flags.loadable
        assert not flags.storable
        assert not flags.is_pier

    def test_pier_q_nets_mapping(self, arm):
        design, piers = arm
        netlist = synthesize(design)
        nets = pier_q_nets(netlist, design, piers)
        # All 8 x 16 register file bits must be present.
        rf_bits = [
            q for q in nets
            if ".u_rf.u_r" in netlist.net_name(q)
        ]
        assert len(rf_bits) == 128

    def test_region_restriction(self, arm):
        design, piers = arm
        netlist = synthesize(design)
        nets = pier_q_nets(netlist, design, piers,
                           region="u_core.u_dp.u_rb.u_rf.")
        assert nets
        for q in nets:
            assert netlist.net_name(q).startswith("u_core.u_dp.u_rb.u_rf.")
