"""End-to-end tests of the Factor facade."""

import os

import pytest

from repro import ExtractionMode, Factor
from repro.atpg.engine import AtpgOptions
from repro.designs import arm2_source, mux_tree_source
from repro.verilog.parser import parse_source


class TestConstruction:
    def test_from_verilog(self):
        factor = Factor.from_verilog(mux_tree_source())
        assert factor.design.top == "mux4"

    def test_from_files(self, tmp_path):
        path = tmp_path / "design.v"
        path.write_text(mux_tree_source())
        factor = Factor.from_files([str(path)])
        assert factor.design.top == "mux4"

    def test_mut_spec_inference_unique(self):
        factor = Factor.from_verilog(arm2_source(), top="arm")
        spec = factor.mut_spec("exc")
        assert spec.path == "u_core.u_exc."

    def test_mut_spec_ambiguous_needs_path(self):
        factor = Factor.from_verilog(mux_tree_source())
        with pytest.raises(ValueError):
            factor.mut_spec("mux2")
        spec = factor.mut_spec("mux2", path="u_lo.")
        assert spec.inst_name == "u_lo"

    def test_mut_spec_unknown_module(self):
        factor = Factor.from_verilog(mux_tree_source())
        with pytest.raises(Exception):
            factor.mut_spec("ghost")


class TestAnalyze:
    @pytest.fixture(scope="class")
    def factor(self):
        return Factor.from_verilog(arm2_source(), top="arm")

    @pytest.fixture(scope="class")
    def result(self, factor):
        return factor.analyze("forward", path="u_core.u_dp.u_fwd.")

    def test_bundle_complete(self, result):
        assert result.extraction.mut.module == "forward"
        assert result.transformed.netlist.gate_count() > 0
        assert result.testability.total_input_ports > 0
        assert result.piers

    def test_write_constraints(self, result, tmp_path):
        written = result.write_constraints(str(tmp_path / "c"))
        assert written
        for path in written:
            assert os.path.exists(path)
        # Written constraint files parse as Verilog.
        text = "\n".join(open(p).read() for p in written)
        names = parse_source(text).module_names()
        assert "forward" in names
        assert "arm" in names

    def test_generate_tests_on_small_mut(self, factor, result):
        report = factor.generate_tests(
            result,
            AtpgOptions(max_frames=3, backtrack_limit=200,
                        fault_time_limit=0.5, random_sequences=4,
                        random_sequence_length=12),
        )
        # The forwarding unit is tiny and fully controllable in-system.
        assert report.coverage_percent > 80.0
        assert report.total_faults < 100

    def test_pier_nets_forwarded_to_engine(self, factor, result):
        assert result.pier_nets
        opts = AtpgOptions(max_frames=2, random_sequences=0,
                           fault_sample=5)
        factor.generate_tests(result, opts)
        assert set(opts.pier_qs) == set(result.pier_nets)


class TestModes:
    def test_conventional_mode_flows(self):
        factor = Factor.from_verilog(
            arm2_source(), top="arm", mode=ExtractionMode.CONVENTIONAL
        )
        result = factor.analyze("exc", path="u_core.u_exc.")
        assert result.extraction.mode is ExtractionMode.CONVENTIONAL
        assert result.transformed.total_gates > 0

    def test_analyze_caches_by_path(self):
        factor = Factor.from_verilog(arm2_source(), top="arm")
        r1 = factor.analyze("exc")
        r2 = factor.analyze("exc")
        assert r1.transformed is r2.transformed
