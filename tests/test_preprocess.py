"""Preprocessor tests."""

import pytest

from repro.verilog.parser import parse_source
from repro.verilog.preprocess import PreprocessError, Preprocessor, preprocess


class TestDefines:
    def test_simple_substitution(self):
        out = preprocess("`define W 8\nwire [`W-1:0] x;\n")
        assert "wire [8-1:0] x;" in out
        assert "`" not in out

    def test_redefinition_wins(self):
        out = preprocess("`define V 1\n`define V 2\na = `V;\n")
        assert "a = 2;" in out

    def test_undef(self):
        src = "`define V 1\n`undef V\n`ifdef V\nyes\n`endif\nno\n"
        out = preprocess(src)
        assert "yes" not in out
        assert "no" in out

    def test_nested_macros(self):
        src = "`define A 4\n`define B (`A + 1)\nx = `B;\n"
        assert "x = (4 + 1);" in preprocess(src)

    def test_recursive_macro_rejected(self):
        src = "`define A `B\n`define B `A\nx = `A;\n"
        with pytest.raises(PreprocessError):
            preprocess(src)

    def test_undefined_macro_rejected(self):
        with pytest.raises(PreprocessError):
            preprocess("x = `GHOST;\n")

    def test_function_like_macro_rejected(self):
        with pytest.raises(PreprocessError):
            preprocess("`define F(x) x\n")

    def test_predefines(self):
        out = preprocess("w = `WIDTH;\n", defines={"WIDTH": "16"})
        assert "w = 16;" in out


class TestConditionals:
    SRC = (
        "`ifdef FAST\n"
        "fast_line\n"
        "`else\n"
        "slow_line\n"
        "`endif\n"
    )

    def test_ifdef_taken(self):
        out = preprocess(self.SRC, defines={"FAST": ""})
        assert "fast_line" in out
        assert "slow_line" not in out

    def test_ifdef_not_taken(self):
        out = preprocess(self.SRC)
        assert "fast_line" not in out
        assert "slow_line" in out

    def test_ifndef(self):
        out = preprocess("`ifndef X\nbody\n`endif\n")
        assert "body" in out

    def test_elsif(self):
        src = (
            "`ifdef A\na\n"
            "`elsif B\nb\n"
            "`else\nc\n"
            "`endif\n"
        )
        assert "b" in preprocess(src, defines={"B": ""})
        assert "c" in preprocess(src)
        assert "a" in preprocess(src, defines={"A": "", "B": ""})

    def test_nested_conditionals(self):
        src = (
            "`ifdef A\n"
            "`ifdef B\nboth\n`endif\n"
            "only_a\n"
            "`endif\n"
        )
        out = preprocess(src, defines={"A": ""})
        assert "only_a" in out and "both" not in out
        out2 = preprocess(src, defines={"A": "", "B": ""})
        assert "both" in out2

    def test_suppressed_region_defines_ignored(self):
        src = "`ifdef NOPE\n`define V 1\n`endif\nx\n"
        pp = Preprocessor()
        pp.process_text(src)
        assert "V" not in pp.macros

    def test_unterminated_ifdef(self):
        with pytest.raises(PreprocessError):
            preprocess("`ifdef A\n")

    def test_stray_endif(self):
        with pytest.raises(PreprocessError):
            preprocess("`endif\n")


class TestIncludes:
    def test_include_relative(self, tmp_path):
        (tmp_path / "defs.vh").write_text("`define W 4\n")
        main = tmp_path / "top.v"
        main.write_text('`include "defs.vh"\nwire [`W-1:0] x;\n')
        out = Preprocessor().process_file(str(main))
        assert "wire [4-1:0] x;" in out

    def test_include_search_path(self, tmp_path):
        inc = tmp_path / "inc"
        inc.mkdir()
        (inc / "lib.vh").write_text("lib_line\n")
        pp = Preprocessor(include_dirs=[str(inc)])
        out = pp.process_text('`include "lib.vh"\n')
        assert "lib_line" in out

    def test_missing_include(self):
        with pytest.raises(PreprocessError):
            preprocess('`include "nope.vh"\n')

    def test_include_cycle_bounded(self, tmp_path):
        a = tmp_path / "a.vh"
        a.write_text(f'`include "{a}"\n')
        with pytest.raises(PreprocessError):
            Preprocessor().process_file(str(a))


class TestNoops:
    def test_timescale_dropped(self):
        out = preprocess("`timescale 1ns/1ps\nmodule m(); endmodule\n")
        assert "timescale" not in out

    def test_unknown_directive_rejected(self):
        with pytest.raises(PreprocessError):
            preprocess("`pragma whatever\n")


class TestEndToEnd:
    def test_preprocessed_design_parses_and_synthesizes(self):
        src = """
`define WIDTH 8
`define RESET_VAL `WIDTH'd0
`timescale 1ns/1ps
module m(input clk, input rst, input [`WIDTH-1:0] d,
         output [`WIDTH-1:0] q);
  reg [`WIDTH-1:0] r;
  always @(posedge clk)
`ifdef NO_RESET
    r <= d;
`else
    if (rst) r <= `RESET_VAL;
    else r <= d;
`endif
  assign q = r;
endmodule
"""
        from repro.hierarchy import Design
        from repro.synth import synthesize

        text = preprocess(src)
        nl = synthesize(Design(parse_source(text)))
        assert len(nl.dffs()) == 8
