"""The DSP filter benchmark: behaviour + full FACTOR flow generality."""

import pytest

from repro import Factor
from repro.atpg.engine import AtpgOptions
from repro.atpg.simulator import LogicSimulator
from repro.designs.filterchip import (
    FILTERCHIP_MUTS,
    filterchip_design,
    filterchip_source,
)
from repro.synth import synthesize


class ChipRunner:
    def __init__(self):
        self.netlist = synthesize(filterchip_design())
        self.sim = LogicSimulator(self.netlist)
        self._default = {
            self.netlist.net_name(pi): 0 for pi in self.netlist.pis
        }

    def cycle(self, **pins):
        bits = dict(self._default)
        for name, value in pins.items():
            if name in bits:
                bits[name] = value
            else:
                width = sum(1 for k in bits if k.startswith(f"{name}["))
                for i in range(width):
                    bits[f"{name}[{i}]"] = (value >> i) & 1
        self._out = self.sim.step_scalar(bits)
        return self._out

    def word(self, base, width=16):
        value = 0
        for i in range(width):
            bit = self._out.get(f"{base}[{i}]")
            if bit is None:
                return None
            value |= bit << i
        return value


@pytest.fixture(scope="module")
def chip():
    return ChipRunner()


class TestFilterBehaviour:
    def load_coeffs(self, chip, coeffs):
        chip.cycle(rst=1)
        for addr, value in enumerate(coeffs):
            chip.cycle(coef_wr=1, coef_addr=addr, coef_data=value)

    def test_impulse_response_is_coefficients(self, chip):
        coeffs = [3, 5, 7, 11]
        self.load_coeffs(chip, coeffs)
        # Push an impulse followed by zeros; the accumulator output walks
        # through the coefficient values.
        outputs = []
        chip.cycle(sample_en=1, sample_in=1)
        for _ in range(4):
            chip.cycle(sample_en=1, sample_in=0)
            outputs.append(chip.word("filt_out"))
        assert outputs == coeffs

    def test_dc_response_is_coefficient_sum(self, chip):
        coeffs = [1, 2, 3, 4]
        self.load_coeffs(chip, coeffs)
        for _ in range(6):
            chip.cycle(sample_en=1, sample_in=10)
        assert chip.word("filt_out") == 10 * sum(coeffs)

    def test_limiter_clips_by_mode(self, chip):
        self.load_coeffs(chip, [255, 255, 255, 255])
        for _ in range(5):
            chip.cycle(sample_en=1, sample_in=255, mode=3)
        out = chip.word("filt_out")
        assert out == 0x0FFF
        assert self_clipped(chip) == 1

    def test_mode0_never_clips(self, chip):
        self.load_coeffs(chip, [255, 255, 255, 255])
        for _ in range(5):
            chip.cycle(sample_en=1, sample_in=255, mode=0)
        assert self_clipped(chip) == 0

    def test_tone_detector_independent(self, chip):
        chip.cycle(rst=1)
        for step in range(6):
            chip.cycle(td_en=1, td_in=step * 10, td_ref=20)
        chip.cycle(td_ref=20)  # registered energy settles
        assert chip.word("td_energy") == 50
        assert chip._out["td_hit"] == 1


def self_clipped(chip):
    return chip._out["clipped"]


class TestFactorFlowOnFilterchip:
    @pytest.fixture(scope="class")
    def factor(self):
        return Factor.from_verilog(filterchip_source(), top="filterchip")

    @pytest.mark.parametrize("mut", FILTERCHIP_MUTS, ids=lambda m: m.name)
    def test_extraction_reduces_environment(self, factor, mut):
        result = factor.analyze(mut.name, path=mut.path)
        full = synthesize(factor.design)
        tr = result.transformed
        full_surr = full.gate_count() - tr.mut_gates
        assert tr.surrounding_gates < full_surr
        # The tone detector never belongs to a DSP-core MUT's cone.
        assert "tone_detect" not in result.extraction.kept_modules()

    def test_mac_tap_union_of_sibling_contexts(self, factor):
        # Extraction for one tap keeps the statements of the fir4 level that
        # any tap instance needs ("all possible paths").
        result = factor.analyze("mac_tap", path="u_dsp.u_fir.u_mac1.")
        fir_marks = result.extraction.marks["fir4"]
        assert len(fir_marks.instances) >= 2  # neighbours on the sum chain

    def test_limiter_threshold_hard_coded(self, factor):
        result = factor.analyze("limiter", path="u_dsp.u_lim.")
        hard = {h.port for h in result.testability.hard_coded_ports}
        assert "threshold" in hard
        assert "enable" in hard
        assert "value" not in hard
        selectors = {
            s for h in result.testability.hard_coded_ports
            for s in h.selectors
        }
        assert "mode" in selectors

    def test_coeff_bank_is_pier(self, factor):
        piers = {(p.module, p.signal): p for p in factor.piers()}
        for reg in ("r0", "r1", "r2", "r3"):
            info = piers[("coeff_bank", reg)]
            assert info.loadable  # written straight from the bus pins

    def test_transformed_atpg_beats_processor_level(self, factor):
        from repro.atpg.engine import AtpgEngine

        mut = FILTERCHIP_MUTS[0]  # mac_tap
        result = factor.analyze(mut.name, path=mut.path)
        opts = AtpgOptions(max_frames=4, frame_schedule=(2, 4),
                           backtrack_limit=200, fault_time_limit=0.4,
                           random_sequences=8, random_sequence_length=24,
                           fault_region=mut.path,
                           pier_qs=frozenset(result.pier_nets), seed=2002)
        report = AtpgEngine(result.transformed.netlist, opts).run()
        assert report.coverage_percent > 85.0
