"""Rule-engine tests: registry, config, waivers, severity overrides."""

import pytest

from repro.hierarchy.design import Design
from repro.lint import (
    Diagnostic,
    LintConfig,
    LintError,
    Rule,
    RuleRegistry,
    Waiver,
    default_registry,
    rule,
    run_lint,
)
from repro.obs import get_registry
from repro.verilog.parser import parse_source

SMALL = """
module tiny(input a, output y);
  wire dead;
  assign y = a;
endmodule
"""


def tiny_design():
    return Design(parse_source(SMALL), top="tiny")


def make_rule(rule_id="T001", severity="warning", hits=1):
    def check(ctx):
        for i in range(hits):
            yield Diagnostic(rule_id=rule_id, severity=severity,
                             category="test", message=f"hit {i}",
                             module="tiny", signal="dead", line=3)
    return Rule(rule_id=rule_id, severity=severity, category="test",
                title="test rule", check=check)


class TestRegistry:
    def test_register_and_lookup(self):
        reg = RuleRegistry()
        reg.register(make_rule())
        assert "T001" in reg
        assert reg.get("T001").title == "test rule"
        assert reg.ids() == ["T001"]

    def test_duplicate_id_rejected(self):
        reg = RuleRegistry()
        reg.register(make_rule())
        with pytest.raises(LintError, match="duplicate"):
            reg.register(make_rule())

    def test_bad_severity_rejected(self):
        reg = RuleRegistry()
        with pytest.raises(LintError, match="severity"):
            reg.register(make_rule(severity="fatal"))

    def test_unknown_rule_lookup(self):
        with pytest.raises(LintError, match="no lint rule"):
            RuleRegistry().get("W999")

    def test_decorator_registers_and_keeps_docstring(self):
        reg = RuleRegistry()

        @rule("T010", "info", "test", "decorated", registry=reg)
        def check(ctx):
            """Rule description from docstring."""
            return []

        assert reg.get("T010").description == "Rule description from docstring."

    def test_default_registry_has_all_shipped_rules(self):
        ids = set(default_registry().ids())
        expected = {"W001", "W002", "W003", "W004", "W005", "W006", "W007",
                    "W008", "W009", "W101", "W102", "W103", "W200", "W201",
                    "W202"}
        assert expected <= ids


class TestConfig:
    def _registry(self):
        reg = RuleRegistry()
        reg.register(make_rule("T001", "warning"))
        reg.register(make_rule("T002", "error"))
        return reg

    def test_disable(self):
        res = run_lint(tiny_design(), LintConfig(disabled={"T001"}),
                       registry=self._registry())
        assert res.by_rule() == {"T002": 1}
        assert res.rules_run == 1

    def test_enable_runs_only_listed(self):
        res = run_lint(tiny_design(), LintConfig(enabled={"T001"}),
                       registry=self._registry())
        assert res.by_rule() == {"T001": 1}

    def test_severity_override(self):
        res = run_lint(
            tiny_design(),
            LintConfig(severity_overrides={"T001": "error"}),
            registry=self._registry(),
        )
        assert {d.rule_id for d in res.errors} == {"T001", "T002"}

    def test_bad_override_level_rejected(self):
        with pytest.raises(LintError, match="bad severity"):
            LintConfig(severity_overrides={"T001": "fatal"})

    def test_unknown_rule_in_config_rejected(self):
        for cfg in (LintConfig(disabled={"W999"}),
                    LintConfig(enabled={"W999"}),
                    LintConfig(severity_overrides={"W999": "error"})):
            with pytest.raises(LintError, match="unknown lint rule"):
                run_lint(tiny_design(), cfg, registry=self._registry())

    def test_waiver_moves_finding_aside(self):
        cfg = LintConfig(waivers=[
            Waiver("T001", module="tiny", signal="dead", reason="known"),
        ])
        res = run_lint(tiny_design(), cfg, registry=self._registry())
        assert res.by_rule() == {"T002": 1}
        assert len(res.waived) == 1
        diag, waiver = res.waived[0]
        assert diag.rule_id == "T001"
        assert waiver.reason == "known"
        assert res.counts()["waived"] == 1

    def test_waiver_respects_module_and_signal(self):
        cfg = LintConfig(waivers=[Waiver("T001", module="other")])
        res = run_lint(tiny_design(), cfg, registry=self._registry())
        assert "T001" in res.by_rule()


class TestResult:
    def test_sorting_and_summary(self):
        reg = RuleRegistry()
        reg.register(make_rule("T001", "warning", hits=2))
        res = run_lint(tiny_design(), registry=reg)
        assert res.summary().startswith("2 findings")
        lines = [d.line for d in res.diagnostics]
        assert lines == sorted(lines)

    def test_file_attached_from_mapping(self):
        reg = RuleRegistry()
        reg.register(make_rule())
        res = run_lint(tiny_design(), registry=reg,
                       files={"tiny": "tiny.v"})
        assert res.diagnostics[0].file == "tiny.v"
        assert res.diagnostics[0].render().startswith("tiny.v:tiny:3:")


class TestMetrics:
    def test_counters_recorded(self):
        metrics = get_registry()
        metrics.reset()
        reg = RuleRegistry()
        reg.register(make_rule("T001", "warning", hits=3))
        run_lint(tiny_design(), registry=reg)
        snap = metrics.snapshot()
        assert snap["lint.runs"]["value"] == 1
        assert snap["lint.findings"]["value"] == 3
        assert snap["lint.warnings"]["value"] == 3
        assert snap["lint.rule.T001"]["value"] == 3
