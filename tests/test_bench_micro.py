"""Tests for the ``repro bench`` microbenchmark harness."""

import json

from repro.bench.experiments import resolve_jobs
from repro.cli import main
from repro.obs.metrics import MetricsRegistry


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(3) == 3
    assert resolve_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit argument wins over the env


def test_resolve_jobs_nonpositive_means_all_cores(monkeypatch):
    import repro.jobs

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setattr(repro.jobs.os, "cpu_count", lambda: 6)
    assert resolve_jobs(0) == 6
    assert resolve_jobs(-1) == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert resolve_jobs() == 6
    monkeypatch.setattr(repro.jobs.os, "cpu_count", lambda: None)
    assert resolve_jobs(0) == 1  # cpu_count unknown -> floor of one


def test_merge_snapshot_folds_worker_delta():
    worker = MetricsRegistry()
    worker.counter("jobs").inc(4)
    worker.gauge("depth").set(7)
    worker.histogram("secs").observe(0.5)
    worker.histogram("secs").observe(3.0)

    parent = MetricsRegistry()
    parent.counter("jobs").inc(1)
    parent.histogram("secs").observe(8.0)
    parent.merge_snapshot(worker.snapshot())

    snap = parent.snapshot()
    assert snap["jobs"]["value"] == 5
    assert snap["depth"]["value"] == 7
    assert snap["secs"]["count"] == 3
    assert snap["secs"]["sum"] == 11.5
    assert snap["secs"]["min"] == 0.5
    assert snap["secs"]["max"] == 8.0
    assert sum(snap["secs"]["buckets"].values()) == 3


def test_merge_snapshot_rejects_unknown_type():
    registry = MetricsRegistry()
    try:
        registry.merge_snapshot({"weird": {"type": "sparkline", "value": 1}})
    except ValueError as err:
        assert "sparkline" in str(err)
    else:  # pragma: no cover - the merge must raise
        raise AssertionError("unknown metric type was accepted")


def test_cli_bench_quick_writes_payloads(tmp_path, capsys):
    out = tmp_path / "results"
    code = main(["bench", "--quick", "--jobs", "1", "--seed", "9",
                 "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Fault simulation" in captured
    assert "ATPG backend equivalence" in captured
    for key in ("fault_sim", "atpg"):
        payload = json.loads((out / f"BENCH_{key}.json").read_text())
        assert payload["scale"] == "quick"
        assert payload["seed"] == 9
        assert payload["jobs"] == 1
        assert payload["rows"], key
        assert all(row["match"] for row in payload["rows"])
        assert payload["record"]["label"] == f"bench.{key}"
        assert "metrics" in payload["record"]
