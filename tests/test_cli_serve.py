"""CLI surfaces of the serving stack: submit/jobs commands and atpg --jobs.

Driven in-process through ``cli.main`` against a ``ServerThread`` so no
subprocess management is needed; the serve bench suite and the jobs-helper
tests cover the real ``repro serve`` subprocess path.
"""

import json

import pytest

from repro.cli import main
from repro.serve import ServeConfig, ServerThread

TWO_MUTS = """
module and2(input a, input b, output y);
  assign y = a & b;
endmodule
module or2(input a, input b, output y);
  assign y = a | b;
endmodule
module topm(input a, input b, input c, output y);
  wire t, u;
  and2 g0(.a(a), .b(b), .y(t));
  or2  g1(.a(t), .b(c), .y(u));
  assign y = ~u;
endmodule
"""


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "two_muts.v"
    path.write_text(TWO_MUTS)
    return str(path)


@pytest.fixture()
def server(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    thread = ServerThread(ServeConfig(port=0, worker_mode="thread",
                                      jobs=1))
    address = thread.start()
    monkeypatch.setenv("REPRO_SERVER", address)
    yield address
    thread.stop()


class TestAtpgJobs:
    def test_multi_mut_serial(self, design_file, capsys):
        rc = main(["atpg", design_file, "--top", "topm",
                   "--mut", "and2", "--mut", "or2",
                   "--frames", "1", "--backtrack-limit", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ATPG reports for 2 MUTs (jobs=1)" in out
        assert "and2_transformed" in out
        assert "or2_transformed" in out
        assert "across 2 MUTs" in out

    def test_multi_mut_parallel_pool(self, design_file, tmp_path, capsys):
        metrics_path = str(tmp_path / "metrics.json")
        rc = main(["atpg", design_file, "--top", "topm",
                   "--mut", "and2", "--mut", "or2",
                   "--frames", "1", "--backtrack-limit", "10",
                   "--jobs", "2", "--metrics-out", metrics_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        # Worker metrics were merged back into the parent registry.
        snapshot = json.loads(open(metrics_path).read())
        assert any(name.startswith("atpg.") for name in snapshot)

    def test_duplicate_muts_rejected(self, design_file, capsys):
        rc = main(["atpg", design_file, "--top", "topm",
                   "--mut", "and2", "--mut", "and2"])
        assert rc == 1
        assert "duplicate" in capsys.readouterr().err

    def test_path_incompatible_with_multi_mut(self, design_file, capsys):
        rc = main(["atpg", design_file, "--top", "topm",
                   "--mut", "and2", "--mut", "or2", "--path", "g0."])
        assert rc == 1
        assert "--path" in capsys.readouterr().err


class TestSubmit:
    def test_submit_files_waits_and_prints_report(self, design_file,
                                                  server, capsys):
        rc = main(["submit", design_file, "--op", "atpg", "--top", "topm",
                   "--mut", "and2", "--frames", "1",
                   "--backtrack-limit", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "job job-" in out
        assert "and2" in out

    def test_submit_json_output(self, design_file, server, capsys):
        rc = main(["submit", design_file, "--op", "lint", "--top", "topm",
                   "--json"])
        assert rc == 0
        job = json.loads(capsys.readouterr().out)
        assert job["status"] == "done"
        assert job["result"]["clean"] is True

    def test_identical_resubmission_is_store_served(self, design_file,
                                                    server, capsys):
        args = ["submit", design_file, "--op", "lint", "--top", "topm",
                "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["served_from"] == "pipeline"
        assert second["served_from"] == "store"

    def test_lint_strict_unclean_exits_2(self, tmp_path, server, capsys):
        # An undriven output is a lint warning; --strict fails the job.
        path = tmp_path / "warny.v"
        path.write_text("module w(input a, output y);\nendmodule\n")
        rc = main(["submit", str(path), "--op", "lint", "--top", "w",
                   "--strict"])
        assert rc == 2

    def test_needs_files_or_design(self, server, capsys):
        rc = main(["submit", "--op", "lint"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_unreachable_server_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER", "http://127.0.0.1:1")
        rc = main(["submit", "--op", "lint", "--design", "arm2"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestJobsCommand:
    def test_lists_submitted_jobs(self, design_file, server, capsys):
        assert main(["submit", design_file, "--op", "lint",
                     "--top", "topm"]) == 0
        capsys.readouterr()
        rc = main(["jobs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "job-" in out
        assert "lint" in out
        assert "done" in out

    def test_status_filter(self, design_file, server, capsys):
        assert main(["submit", design_file, "--op", "lint",
                     "--top", "topm"]) == 0
        capsys.readouterr()
        rc = main(["jobs", "--status", "failed"])
        assert rc == 0
        assert "job-" not in capsys.readouterr().out
