"""CLI tests (driven in-process through cli.main)."""

import pytest

from repro.cli import main
from repro.designs import arm2_source


@pytest.fixture(scope="module")
def design_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "arm2.v"
    path.write_text(arm2_source())
    return str(path)


class TestAnalyze:
    def test_analyze_prints_summary(self, design_file, capsys):
        rc = main(["analyze", design_file, "--top", "arm",
                   "--mut", "forward"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "transformed:" in out
        assert "MUT forward" in out

    def test_analyze_writes_constraints(self, design_file, tmp_path,
                                        capsys):
        out_dir = str(tmp_path / "constraints")
        rc = main(["analyze", design_file, "--top", "arm",
                   "--mut", "exc", "--out", out_dir])
        assert rc == 0
        import os

        assert os.path.isdir(out_dir)
        assert any(f.endswith(".v") for f in os.listdir(out_dir))

    def test_conventional_mode(self, design_file, capsys):
        rc = main(["analyze", design_file, "--top", "arm",
                   "--mut", "exc", "--mode", "conventional"])
        assert rc == 0

    def test_missing_file_errors(self, capsys):
        rc = main(["analyze", "/nonexistent.v", "--mut", "x"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestTestability:
    def test_reports_hard_coded(self, design_file, capsys):
        rc = main(["testability", design_file, "--top", "arm",
                   "--mut", "arm_alu", "--path", "u_core.u_dp.u_alu."])
        assert rc == 0
        out = capsys.readouterr().out
        assert "13 of 15" in out


class TestAtpg:
    def test_atpg_on_small_mut(self, design_file, capsys):
        rc = main(["atpg", design_file, "--top", "arm", "--mut", "forward",
                   "--frames", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ATPG report for forward" in out
        assert "detected" in out


class TestStatsAndPiers:
    def test_stats_full_design(self, design_file, capsys):
        rc = main(["stats", design_file, "--top", "arm"])
        assert rc == 0
        assert "Netlist statistics: arm" in capsys.readouterr().out

    def test_stats_single_module(self, design_file, capsys):
        rc = main(["stats", design_file, "--top", "arm",
                   "--module", "arm_alu"])
        assert rc == 0
        assert "arm_alu" in capsys.readouterr().out

    def test_piers_lists_registers(self, design_file, capsys):
        rc = main(["piers", design_file, "--top", "arm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reg16" in out
        assert "PIER" in out


CLEAN = """
module clean(input clk, input d, output reg q);
  always @(posedge clk)
    q <= d;
endmodule
"""

WARN_ONLY = """
module warny(input clk, input d, output reg q);
  wire dead;
  assign dead = d;
  always @(posedge clk)
    q <= d;
endmodule
"""

ERRORS = """
module buggy(input a, output y, output z);
  assign y = a;
endmodule
"""


@pytest.fixture()
def lint_file(tmp_path):
    def write(source, name="design.v"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)
    return write


class TestLint:
    def test_clean_design_exits_zero(self, lint_file, capsys):
        rc = main(["lint", lint_file(CLEAN)])
        assert rc == 0
        assert "0 errors" in capsys.readouterr().out

    def test_warnings_exit_zero_by_default(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY)])
        assert rc == 0

    def test_strict_turns_warnings_into_exit_one(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY), "--strict"])
        assert rc == 1

    def test_errors_exit_two(self, lint_file, capsys):
        rc = main(["lint", lint_file(ERRORS)])
        assert rc == 2
        assert "W101" in capsys.readouterr().out

    def test_interrupt_exits_130(self, lint_file, capsys, monkeypatch):
        import repro.cli as cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "lint", boom)
        rc = main(["lint", lint_file(CLEAN)])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err

    def test_no_files_errors(self, capsys):
        rc = main(["lint"])
        assert rc == 1
        assert "no Verilog source" in capsys.readouterr().err

    def test_unknown_rule_errors(self, lint_file, capsys):
        rc = main(["lint", lint_file(CLEAN), "--disable", "W999"])
        assert rc == 1
        assert "unknown lint rule" in capsys.readouterr().err

    def test_parse_error_exits_one(self, lint_file, capsys):
        rc = main(["lint", lint_file("module broken(input a;")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "W001" in out and "W202" in out

    def test_disable_suppresses_rule(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY), "--strict",
                   "--disable", "W003"])
        assert rc == 0

    def test_severity_override_escalates(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY),
                   "--severity", "W003=error"])
        assert rc == 2

    def test_waive_suppresses_finding(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY), "--strict",
                   "--waive", "W003:warny:dead"])
        assert rc == 0
        assert "1 waived" in capsys.readouterr().out

    def test_out_writes_sarif_file(self, lint_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "report.sarif"
        rc = main(["lint", lint_file(ERRORS), "--format", "sarif",
                   "--out", str(out_path)])
        assert rc == 2
        log = json.loads(out_path.read_text())
        assert log["version"] == "2.1.0"
        assert "wrote sarif report" in capsys.readouterr().out


class TestExplain:
    def test_text_trace_for_blocked_signal(self, lint_file, capsys):
        rc = main(["explain", lint_file(ERRORS), "y"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "not blocked" in out

    def test_json_payload_for_undriven_output(self, lint_file, capsys):
        import json

        rc = main(["explain", lint_file(ERRORS), "z", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["blocked"] is True
        assert payload["root_cause"] == "no_definition"
        assert len(payload["trace"]["hops"]) >= 2
        assert payload["witness"]["kind"] == "vector_pair"

    def test_no_witness_flag_skips_witness(self, lint_file, capsys):
        import json

        rc = main(["explain", lint_file(ERRORS), "z", "--json",
                   "--no-witness"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["witness"] is None

    def test_unknown_target_exits_one(self, lint_file, capsys):
        rc = main(["explain", lint_file(ERRORS), "nope"])
        assert rc == 1
        assert "no signal" in capsys.readouterr().err

    def test_module_scoped_target(self, lint_file, capsys):
        path = lint_file(CLEAN + ERRORS)
        rc = main(["explain", path, "--top", "clean", "buggy.z"])
        assert rc == 0
        assert "no_definition" in capsys.readouterr().out


class TestWaiverExpiry:
    def test_expired_waiver_resurfaces(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY), "--strict",
                   "--waive", "W003:warny:dead@2000-01-01"])
        assert rc == 1  # resurfaced as a warning under --strict
        out = capsys.readouterr().out
        assert "[waiver expired 2000-01-01]" in out

    def test_future_waiver_still_suppresses(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY), "--strict",
                   "--waive", "W003:warny:dead@2999-12-31"])
        assert rc == 0
        assert "1 waived" in capsys.readouterr().out

    def test_bad_expiry_exits_one(self, lint_file, capsys):
        rc = main(["lint", lint_file(WARN_ONLY),
                   "--waive", "W003@soon"])
        assert rc == 1
        assert "expiry" in capsys.readouterr().err


class TestLintGate:
    def test_analyze_gate_off_by_default(self, tmp_path, capsys):
        # An error-level lint finding in an unused module does not stop
        # analyze unless --lint is given.
        source = arm2_source() + ERRORS
        path = tmp_path / "gated.v"
        path.write_text(source)
        rc = main(["analyze", str(path), "--top", "arm",
                   "--mut", "forward"])
        assert rc == 0

    def test_analyze_gate_aborts_on_errors(self, tmp_path, capsys):
        source = arm2_source() + ERRORS
        path = tmp_path / "gated.v"
        path.write_text(source)
        rc = main(["analyze", str(path), "--top", "arm",
                   "--mut", "forward", "--lint"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "lint gate failed" in err
        assert "W101" in err
        # Gate output carries the root-cause hops, not just the one-liner.
        assert "justification endpoint" in err

    def test_atpg_gate_passes_clean_design(self, design_file, capsys):
        rc = main(["atpg", design_file, "--top", "arm", "--mut", "forward",
                   "--frames", "3", "--lint"])
        assert rc == 0
        assert "ATPG report" in capsys.readouterr().out


class TestPreprocessorFlags:
    def test_define_and_include(self, tmp_path, capsys):
        inc = tmp_path / "inc"
        inc.mkdir()
        (inc / "w.vh").write_text("`define W 4\n")
        design = tmp_path / "chip.v"
        design.write_text("""
`include "w.vh"
module chip(input [`W-1:0] a, output [`W-1:0] y);
`ifdef INVERT
  assign y = ~a;
`else
  assign y = a;
`endif
endmodule
""")
        rc = main(["stats", str(design), "--top", "chip",
                   "-I", str(inc), "-D", "INVERT"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chip" in out

    def test_define_with_value(self, tmp_path, capsys):
        design = tmp_path / "chip.v"
        design.write_text("""
module chip(input [`WIDTH-1:0] a, output y);
  assign y = ^a;
endmodule
""")
        rc = main(["stats", str(design), "--top", "chip",
                   "--define", "WIDTH=8"])
        assert rc == 0
