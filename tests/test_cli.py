"""CLI tests (driven in-process through cli.main)."""

import pytest

from repro.cli import main
from repro.designs import arm2_source


@pytest.fixture(scope="module")
def design_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "arm2.v"
    path.write_text(arm2_source())
    return str(path)


class TestAnalyze:
    def test_analyze_prints_summary(self, design_file, capsys):
        rc = main(["analyze", design_file, "--top", "arm",
                   "--mut", "forward"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "transformed:" in out
        assert "MUT forward" in out

    def test_analyze_writes_constraints(self, design_file, tmp_path,
                                        capsys):
        out_dir = str(tmp_path / "constraints")
        rc = main(["analyze", design_file, "--top", "arm",
                   "--mut", "exc", "--out", out_dir])
        assert rc == 0
        import os

        assert os.path.isdir(out_dir)
        assert any(f.endswith(".v") for f in os.listdir(out_dir))

    def test_conventional_mode(self, design_file, capsys):
        rc = main(["analyze", design_file, "--top", "arm",
                   "--mut", "exc", "--mode", "conventional"])
        assert rc == 0

    def test_missing_file_errors(self, capsys):
        rc = main(["analyze", "/nonexistent.v", "--mut", "x"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestTestability:
    def test_reports_hard_coded(self, design_file, capsys):
        rc = main(["testability", design_file, "--top", "arm",
                   "--mut", "arm_alu", "--path", "u_core.u_dp.u_alu."])
        assert rc == 0
        out = capsys.readouterr().out
        assert "13 of 15" in out


class TestAtpg:
    def test_atpg_on_small_mut(self, design_file, capsys):
        rc = main(["atpg", design_file, "--top", "arm", "--mut", "forward",
                   "--frames", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ATPG report for forward" in out
        assert "detected" in out


class TestStatsAndPiers:
    def test_stats_full_design(self, design_file, capsys):
        rc = main(["stats", design_file, "--top", "arm"])
        assert rc == 0
        assert "Netlist statistics: arm" in capsys.readouterr().out

    def test_stats_single_module(self, design_file, capsys):
        rc = main(["stats", design_file, "--top", "arm",
                   "--module", "arm_alu"])
        assert rc == 0
        assert "arm_alu" in capsys.readouterr().out

    def test_piers_lists_registers(self, design_file, capsys):
        rc = main(["piers", design_file, "--top", "arm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reg16" in out
        assert "PIER" in out


class TestPreprocessorFlags:
    def test_define_and_include(self, tmp_path, capsys):
        inc = tmp_path / "inc"
        inc.mkdir()
        (inc / "w.vh").write_text("`define W 4\n")
        design = tmp_path / "chip.v"
        design.write_text("""
`include "w.vh"
module chip(input [`W-1:0] a, output [`W-1:0] y);
`ifdef INVERT
  assign y = ~a;
`else
  assign y = a;
`endif
endmodule
""")
        rc = main(["stats", str(design), "--top", "chip",
                   "-I", str(inc), "-D", "INVERT"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chip" in out

    def test_define_with_value(self, tmp_path, capsys):
        design = tmp_path / "chip.v"
        design.write_text("""
module chip(input [`WIDTH-1:0] a, output y);
  assign y = ^a;
endmodule
""")
        rc = main(["stats", str(design), "--top", "chip",
                   "--define", "WIDTH=8"])
        assert rc == 0
