"""Behavioural tests for the small library designs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import (
    adder_source,
    mux_tree_source,
    parity_source,
    shifter_source,
    small_designs,
)
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.verilog.parser import parse_source

from .conftest import CircuitHarness


class TestAllSynthesize:
    @pytest.mark.parametrize("name", sorted(small_designs()))
    def test_synthesizes_and_validates(self, name):
        nl = synthesize(Design(parse_source(small_designs()[name])))
        nl.validate()
        assert nl.gate_count() > 0 or nl.dffs()


class TestAdder:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_adds(self, a, b, cin):
        h = CircuitHarness(adder_source(4))
        out = h.eval(a=a, b=b, cin=cin)
        total = a + b + cin
        assert out["sum"] == total & 0xF
        assert out["cout"] == total >> 4

    def test_wide_adder(self):
        h = CircuitHarness(adder_source(12))
        out = h.eval(a=0xFFF, b=1, cin=0)
        assert out["sum"] == 0
        assert out["cout"] == 1


class TestMuxTree:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 3))
    def test_selects(self, d, sel):
        h = CircuitHarness(mux_tree_source())
        assert h.eval(d=d, sel=sel)["y"] == (d >> sel) & 1


class TestParity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255))
    def test_parity(self, d):
        h = CircuitHarness(parity_source(8))
        out = h.eval(d=d)
        ones = bin(d).count("1")
        assert out["odd"] == ones % 2
        assert out["even"] == 1 - ones % 2


class TestShifter:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 7), st.integers(0, 1))
    def test_shift(self, d, amt, direction):
        h = CircuitHarness(shifter_source())
        expected = (d >> amt) if direction else ((d << amt) & 0xFF)
        assert h.eval(d=d, amt=amt, dir=direction)["y"] == expected
