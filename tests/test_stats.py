"""Netlist statistics tests (logic levels, sequential depth, fault counts)."""


from repro.designs import adder_source, arm2_design, counter_source
from repro.hierarchy import Design
from repro.synth import netlist_stats, sequential_depth, synthesize
from repro.synth.netlist import GateType, Netlist
from repro.synth.stats import logic_levels
from repro.verilog.parser import parse_source


def netlist_of(src, top=None):
    return synthesize(Design(parse_source(src), top=top))


class TestLogicLevels:
    def test_single_gate(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.NOT, (a,))
        nl.add_po(y, "y")
        assert logic_levels(nl) == 1

    def test_chain(self):
        nl = Netlist()
        net = nl.add_pi("a")
        for _ in range(5):
            net = nl.add_gate(GateType.NOT, (net,))
        nl.add_po(net, "y")
        assert logic_levels(nl) == 5

    def test_adder_depth_ripple(self):
        nl = netlist_of(adder_source(width=8))
        # A ripple-carry adder's depth grows with width.
        narrow = netlist_of(adder_source(width=2))
        assert logic_levels(nl) > logic_levels(narrow)


class TestSequentialDepth:
    def test_combinational_is_zero(self):
        nl = netlist_of(adder_source())
        assert sequential_depth(nl) == 0

    def test_single_register_stage(self):
        src = """
        module m(input clk, input d, output q);
          reg r;
          always @(posedge clk) r <= d;
          assign q = r;
        endmodule
        """
        assert sequential_depth(netlist_of(src)) == 1

    def test_pipeline_depth(self):
        src = """
        module m(input clk, input d, output q);
          reg r1;
          reg r2;
          reg r3;
          always @(posedge clk) begin
            r1 <= d;
            r2 <= r1;
            r3 <= r2;
          end
          assign q = r3;
        endmodule
        """
        assert sequential_depth(netlist_of(src)) == 3

    def test_feedback_counter_bounded(self):
        nl = netlist_of(counter_source())
        depth = sequential_depth(nl)
        assert 1 <= depth <= len(nl.dffs())

    def test_arm2_is_deeply_sequential(self):
        nl = synthesize(arm2_design())
        assert sequential_depth(nl) >= 3


class TestNetlistStats:
    def test_fields(self):
        nl = netlist_of(counter_source())
        stats = netlist_stats(nl)
        assert stats.num_pis == len(nl.pis)
        assert stats.num_pos == len(nl.pos)
        assert stats.num_gates == nl.gate_count()
        assert stats.num_dffs == len(nl.dffs())
        assert stats.num_faults > 0
        row = stats.as_row()
        assert row["gates"] == stats.num_gates

    def test_fault_region_restriction(self):
        design = arm2_design()
        nl = synthesize(design)
        full = netlist_stats(nl)
        alu_only = netlist_stats(nl, fault_region="u_core.u_dp.u_alu.")
        assert 0 < alu_only.num_faults < full.num_faults
