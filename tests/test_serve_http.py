"""HTTP plumbing: request parsing limits, routing, response rendering."""

import asyncio
import json

import pytest

from repro.serve.httpd import (
    HttpError,
    HttpRequest,
    HttpResponse,
    Router,
    read_request,
)


def parse(raw: bytes, **kwargs):
    """Drive ``read_request`` over an in-memory stream."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(b"GET /v1/jobs?status=done&x=a%20b HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/jobs"
        assert request.query == {"status": "done", "x": "a b"}
        assert request.keep_alive is True

    def test_post_with_body(self):
        body = json.dumps({"op": "lint"}).encode()
        raw = (b"POST /v1/jobs HTTP/1.1\r\n"
               b"Content-Type: application/json\r\n"
               + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        request = parse(raw)
        assert request.json() == {"op": "lint"}

    def test_connection_close_clears_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_line(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET /v1")
        assert exc.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError, match="malformed"):
            parse(b"GETS LASH\r\n\r\n")

    def test_rejects_http_10_and_below(self):
        with pytest.raises(HttpError, match="unsupported protocol"):
            parse(b"GET / HTTP/0.9\r\n\r\n")

    def test_rejects_chunked_transfer(self):
        with pytest.raises(HttpError, match="chunked"):
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_body_size_limit_is_413(self):
        raw = (b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
               + b"x" * 100)
        with pytest.raises(HttpError) as exc:
            parse(raw, max_body=10)
        assert exc.value.status == 413

    def test_bad_content_length(self):
        with pytest.raises(HttpError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        with pytest.raises(HttpError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_truncated_body(self):
        with pytest.raises(HttpError, match="truncated body"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_header_size_limit(self):
        raw = (b"GET / HTTP/1.1\r\n"
               + b"X-Pad: " + b"y" * (70 * 1024) + b"\r\n\r\n")
        with pytest.raises(HttpError):
            parse(raw)

    def test_percent_decoded_path(self):
        request = parse(b"GET /v1/jobs/job%2D1 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/jobs/job-1"

    def test_two_pipelined_requests(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET /a HTTP/1.1\r\n\r\n"
                             b"GET /b HTTP/1.1\r\n\r\n")
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = asyncio.run(run())
        assert (first.path, second.path) == ("/a", "/b")
        assert third is None


class TestResponse:
    def test_render_json(self):
        raw = HttpResponse.from_json({"ok": True}).render()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head
        assert json.loads(body) == {"ok": True}

    def test_render_close_and_extra_headers(self):
        response = HttpResponse.from_json(
            {"error": "full"}, status=429, headers={"Retry-After": "7"})
        response.close = True
        raw = response.render()
        assert raw.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 7" in raw
        assert b"Connection: close" in raw

    def test_from_text(self):
        raw = HttpResponse.from_text("# metrics\n",
                                     content_type="text/plain").render()
        assert b"Content-Type: text/plain" in raw
        assert raw.endswith(b"# metrics\n")


class TestRouter:
    def build(self):
        router = Router()
        router.add("GET", "/v1/jobs", "list")
        router.add("POST", "/v1/jobs", "submit")
        router.add("GET", "/v1/jobs/{job_id}", "show")
        router.add("GET", "/healthz", "health")
        return router

    def test_literal_and_param_match(self):
        router = self.build()
        handler, params = router.match("GET", "/v1/jobs")
        assert (handler, params) == ("list", {})
        handler, params = router.match("GET", "/v1/jobs/job-12-ab")
        assert handler == "show"
        assert params == {"job_id": "job-12-ab"}

    def test_method_dispatch_on_same_path(self):
        router = self.build()
        assert router.match("POST", "/v1/jobs")[0] == "submit"

    def test_404_vs_405(self):
        router = self.build()
        with pytest.raises(HttpError) as exc:
            router.match("GET", "/v2/jobs")
        assert exc.value.status == 404
        with pytest.raises(HttpError) as exc:
            router.match("DELETE", "/v1/jobs")
        assert exc.value.status == 405

    def test_request_dataclass_defaults(self):
        request = HttpRequest(method="GET", target="/", path="/",
                              query={}, headers={})
        assert request.body == b""
        assert request.keep_alive is True
