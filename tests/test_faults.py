"""Tests for the stuck-at fault model and equivalence collapsing."""


from repro.atpg.faults import Fault, build_fault_list, fault_universe_size
from repro.designs import arm2_design
from repro.hierarchy import Design
from repro.synth import synthesize
from repro.synth.netlist import GateType, Netlist
from repro.verilog.parser import parse_source


class TestFaultList:
    def test_two_faults_per_site_uncollapsed(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.XOR, (a, b))
        nl.add_po(y, "y")
        faults = build_fault_list(nl, collapse=False)
        assert len(faults) == 6  # 3 sites x 2 polarities
        assert fault_universe_size(nl) == 6

    def test_fault_ordering_deterministic(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.NOT, (a,))
        nl.add_po(y, "y")
        assert build_fault_list(nl) == build_fault_list(nl)

    def test_describe(self):
        nl = Netlist()
        a = nl.add_pi("a")
        nl.add_po(a, "y")
        assert Fault(a, 1).describe(nl) == "a stuck-at-1"


class TestCollapsing:
    def test_not_gate_input_faults_dropped(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y = nl.add_gate(GateType.NOT, (a,))
        nl.add_po(y, "y")
        faults = build_fault_list(nl)
        # a-sa0 == y-sa1 and a-sa1 == y-sa0: only the output pair remains.
        assert set(faults) == {Fault(y, 0), Fault(y, 1)}

    def test_and_gate_input_sa0_dropped(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.AND, (a, b))
        nl.add_po(y, "y")
        faults = set(build_fault_list(nl))
        assert Fault(a, 0) not in faults
        assert Fault(b, 0) not in faults
        assert Fault(a, 1) in faults
        assert Fault(b, 1) in faults
        assert Fault(y, 0) in faults

    def test_or_gate_input_sa1_dropped(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.OR, (a, b))
        nl.add_po(y, "y")
        faults = set(build_fault_list(nl))
        assert Fault(a, 1) not in faults
        assert Fault(a, 0) in faults

    def test_fanout_blocks_collapsing(self):
        nl = Netlist()
        a = nl.add_pi("a")
        y1 = nl.add_gate(GateType.AND, (a, a))
        y2 = nl.add_gate(GateType.NOT, (a,))
        nl.add_po(y1, "y1")
        nl.add_po(y2, "y2")
        faults = set(build_fault_list(nl))
        # 'a' fans out: its faults must be kept.
        assert Fault(a, 0) in faults
        assert Fault(a, 1) in faults

    def test_xor_inputs_never_collapsed(self):
        nl = Netlist()
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        y = nl.add_gate(GateType.XOR, (a, b))
        nl.add_po(y, "y")
        faults = set(build_fault_list(nl))
        assert {Fault(a, 0), Fault(a, 1), Fault(b, 0), Fault(b, 1)} <= faults

    def test_collapsed_is_subset(self):
        design = arm2_design()
        nl = synthesize(design, root="arm_alu")
        collapsed = set(build_fault_list(nl, collapse=True))
        full = set(build_fault_list(nl, collapse=False))
        assert collapsed < full


class TestRegions:
    SRC = """
    module leaf(input i, output o);
      assign o = ~i;
    endmodule
    module top(input a, output y, output z);
      wire t;
      leaf u1(.i(a), .o(t));
      assign y = t;
      assign z = a & t;
    endmodule
    """

    def test_region_filter(self):
        nl = synthesize(Design(parse_source(self.SRC)), do_optimize=False)
        all_faults = build_fault_list(nl)
        leaf_faults = build_fault_list(nl, region="u1.")
        assert leaf_faults
        assert set(leaf_faults) < set(all_faults)
        regions = nl.regions
        for fault in leaf_faults:
            assert regions.get(fault.net, "").startswith("u1.")

    def test_arm2_mut_regions_nonempty(self):
        nl = synthesize(arm2_design())
        for region in ("u_core.u_dp.u_alu.", "u_core.u_exc.",
                       "u_core.u_dp.u_fwd.", "u_core.u_dp.u_rb.u_rf."):
            assert build_fault_list(nl, region=region), region
