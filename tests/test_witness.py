"""Witness vectors: generation, ATPG redundancy fallback, and the seeded
differential replay of every witness on both simulator backends."""

import os

import pytest

from repro.hierarchy.design import Design
from repro.lint import run_lint
from repro.lint.witness import (
    atpg_redundancy_witness,
    generate_vector_pair_witness,
    implied_assignments,
    replay_witness,
    witness_for_trace,
)
from repro.synth.elaborate import synthesize
from repro.verilog.parser import parse_source

CONN_DEMO = os.path.join(os.path.dirname(__file__), os.pardir,
                         "examples", "conn_demo.v")


def netlist_for(src, top=None):
    design = Design(parse_source(src), top=top)
    return design, synthesize(design, do_optimize=False)


DEAD_INPUT = """
module m(input a, input dead, output y);
  assign y = ~a;
endmodule
"""


class TestVectorPair:
    def test_propagation_witness_verifies(self):
        _, netlist = netlist_for(DEAD_INPUT)
        w = generate_vector_pair_witness(netlist, "dead", "propagation")
        assert w is not None
        assert w["kind"] == "vector_pair"
        assert w["verified"] is True
        v0, v1 = w["vectors"]
        assert v0["dead"] == 0 and v1["dead"] == 1
        # Only the target toggles between the two vectors.
        assert {k: v for k, v in v0.items() if k != "dead"} \
            == {k: v for k, v in v1.items() if k != "dead"}

    def test_justification_witness_on_undriven_output(self):
        _, netlist = netlist_for("""
module m(input a, output y, output orphan);
  assign y = a;
endmodule
""")
        w = generate_vector_pair_witness(netlist, "orphan", "justification")
        assert w is not None and w["verified"] is True
        assert w["watch"] == ["orphan"]

    def test_live_signal_is_not_verified(self):
        _, netlist = netlist_for(DEAD_INPUT)
        w = generate_vector_pair_witness(netlist, "a", "propagation")
        assert w is not None
        assert w["verified"] is False  # toggling a visibly flips y

    def test_missing_signal_returns_none(self):
        _, netlist = netlist_for(DEAD_INPUT)
        assert generate_vector_pair_witness(
            netlist, "nope", "propagation") is None

    def test_unsimulatable_netlist_returns_none(self):
        design = Design(parse_source("""
module m(input a, input dead, output y);
  wire looped;
  and g0(looped, looped, a);
  assign y = looped;
endmodule
"""))
        netlist = synthesize(design, do_optimize=False)
        assert generate_vector_pair_witness(
            netlist, "dead", "propagation") is None


class TestAtpgRedundancy:
    def test_dead_branch_register_is_redundant(self):
        _, netlist = netlist_for("""
module m(input clk, input d, output y);
  reg r;
  always @(posedge clk) begin
    if (1'b0)
      r <= d;
  end
  assign y = r;
endmodule
""")
        w = atpg_redundancy_witness(netlist, "r")
        assert w is not None
        assert w["kind"] == "atpg_redundant"
        assert w["verified"] is True

    def test_testable_signal_yields_no_proof(self):
        _, netlist = netlist_for(DEAD_INPUT)
        assert atpg_redundancy_witness(netlist, "a") is None

    def test_implied_assignments_report_constant_cone(self):
        _, netlist = netlist_for("""
module m(input a, output y);
  wire k;
  assign k = 1'b1;
  assign y = a & k;
endmodule
""")
        implied = implied_assignments(netlist)
        assert implied.get("k") == 1


class TestSeededDifferentialReplay:
    """Satellite: every emitted witness replays identically on the
    interpreted and the compiled simulator."""

    def _witnesses(self):
        with open(CONN_DEMO, "r", encoding="utf-8") as handle:
            src = handle.read()
        design = Design(parse_source(src), top="conn_demo")
        result = run_lint(design)
        netlist = synthesize(design, do_optimize=False)
        pairs = [d.witness for d in result.diagnostics
                 if d.witness is not None
                 and d.witness.get("kind") == "vector_pair"]
        return netlist, pairs

    def test_replay_on_both_backends(self):
        netlist, pairs = self._witnesses()
        assert pairs  # conn_demo must yield vector-pair witnesses
        for witness in pairs:
            assert replay_witness(netlist, witness, "interpreted")
            assert replay_witness(netlist, witness, "compiled")

    def test_witnesses_are_seed_deterministic(self):
        _, first = self._witnesses()
        _, second = self._witnesses()
        assert first == second

    def test_replay_rejects_atpg_witness(self):
        _, netlist = netlist_for(DEAD_INPUT)
        with pytest.raises(ValueError, match="vector_pair"):
            replay_witness(netlist, {"kind": "atpg_redundant"},
                           "interpreted")


class TestWitnessForTrace:
    def test_buried_endpoint_falls_back_to_atpg(self):
        src = """
module sink(input dead_end);
endmodule
module m(input a, output y);
  sink u0(.dead_end(a));
  assign y = a;
endmodule
"""
        design, netlist = netlist_for(src, top="m")
        from repro.lint.rootcause import RootCauseAnalyzer

        trace = RootCauseAnalyzer(design).explain_propagation(
            "sink", "dead_end")
        assert trace.blocked
        w = witness_for_trace(netlist, trace, "m")
        assert w is not None
        assert w["kind"] == "atpg_redundant"

    def test_unblocked_trace_gets_no_witness(self):
        design, netlist = netlist_for(DEAD_INPUT)
        from repro.lint.rootcause import RootCauseAnalyzer

        trace = RootCauseAnalyzer(design).explain_propagation("m", "a")
        assert not trace.blocked
        assert witness_for_trace(netlist, trace, "m") is None
