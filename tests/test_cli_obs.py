"""CLI observability surface: profile, trace/metrics outputs, exits."""

import json

import pytest

import repro
import repro.cli as cli
from repro.cli import main

SMALL_CHIP = """
module leaf(
  input [3:0] a,
  input [1:0] sel,
  output reg [3:0] y
);
  always @(*)
    case (sel)
      2'b00: y = a;
      2'b01: y = a >> 1;
      default: y = 4'd0;
    endcase
endmodule

module chip(
  input clk,
  input [3:0] data,
  input [1:0] ctl,
  output [3:0] out
);
  reg [1:0] ctl_q;
  always @(posedge clk)
    ctl_q <= (ctl == 2'b11) ? 2'b00 : ctl;
  leaf u_leaf(.a(data), .sel(ctl_q), .y(out));
endmodule
"""


@pytest.fixture(scope="module")
def design_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_obs") / "chip.v"
    path.write_text(SMALL_CHIP)
    return str(path)


def _profile(design_file, tmp_path, *extra):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    rc = main(["profile", design_file, "--top", "chip", "--mut", "leaf",
               "--frames", "2",
               "--trace-out", str(trace), "--metrics-out", str(metrics),
               *extra])
    return rc, trace, metrics


class TestProfileCommand:
    def test_prints_all_phases(self, design_file, tmp_path, capsys):
        rc, _, _ = _profile(design_file, tmp_path)
        assert rc == 0
        out = capsys.readouterr().out
        for phase in ("parse", "extract", "compose", "synth", "atpg",
                      "total"):
            assert phase in out
        assert "Pipeline metrics" in out

    def test_phase_times_sum_close_to_total(self, design_file, tmp_path,
                                            capsys):
        rc, _, _ = _profile(design_file, tmp_path)
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        wall = {}
        for line in lines:
            parts = line.split()
            if len(parts) == 4 and parts[0] in (
                "parse", "extract", "compose", "synth", "testability",
                "piers", "atpg", "(other)", "total",
            ):
                wall[parts[0]] = float(parts[1])
        total = wall.pop("total")
        other = wall.pop("(other)")
        assert total > 0
        # The instrumented phases must cover the run end to end.
        assert abs(sum(wall.values()) + other - total) <= 0.05 * total
        assert sum(wall.values()) >= 0.95 * (total - other)

    def test_trace_out_nested_spans(self, design_file, tmp_path, capsys):
        rc, trace, _ = _profile(design_file, tmp_path)
        assert rc == 0
        with open(trace) as handle:
            data = json.load(handle)
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        for root in data["spans"]:
            collect(root)
        assert {"profile", "parse", "extract", "compose", "synth",
                "atpg"} <= names
        (root,) = data["spans"]
        assert root["name"] == "profile"
        assert root["children"]  # the phases nest under the root

    def test_metrics_out_valid_json(self, design_file, tmp_path, capsys):
        rc, _, metrics = _profile(design_file, tmp_path)
        assert rc == 0
        with open(metrics) as handle:
            snap = json.load(handle)
        assert snap["verilog.tokens"]["type"] == "counter"
        assert snap["verilog.tokens"]["value"] > 0
        assert snap["extract.tasks_run"]["value"] > 0
        assert any(name.startswith("atpg.") for name in snap)

    def test_trace_out_on_other_commands(self, design_file, tmp_path,
                                         capsys):
        trace = tmp_path / "stats-trace.json"
        rc = main(["stats", design_file, "--top", "chip",
                   "--trace-out", str(trace)])
        assert rc == 0
        data = json.load(open(trace))
        assert any(r["name"].startswith("synth") or r["name"] == "parse"
                   for r in data["spans"])


class TestExitPaths:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out

    def test_keyboard_interrupt_exits_130(self, design_file, monkeypatch,
                                          capsys):
        def boom(args):
            raise KeyboardInterrupt
        monkeypatch.setitem(cli._COMMANDS, "stats", boom)
        rc = main(["stats", design_file, "--top", "chip"])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err

    def test_unexpected_error_logged_and_reraised(self, design_file,
                                                  monkeypatch, capsys):
        def boom(args):
            raise RuntimeError("exploded")
        monkeypatch.setitem(cli._COMMANDS, "stats", boom)
        with pytest.raises(RuntimeError):
            main(["stats", design_file, "--top", "chip"])
        assert "unhandled_error" in capsys.readouterr().err

    def test_os_error_still_exits_1(self, capsys):
        rc = main(["analyze", "/nonexistent.v", "--mut", "x"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestRunRecords:
    """Regression: report/result timing fields still populate, now
    span-derived, and results carry a RunRecord."""

    def _factor(self):
        return repro.Factor.from_verilog(SMALL_CHIP, top="chip")

    def test_analyze_attaches_record(self):
        factor = self._factor()
        result = factor.analyze("leaf")
        assert result.record is not None
        analyze = result.record.span("analyze")
        assert analyze is not None
        child_names = {c.name for c in analyze.children}
        assert {"extract", "compose", "synth"} <= child_names
        assert result.record.metrics  # snapshot captured
        json.dumps(result.record.as_dict())  # serializable

    def test_timing_fields_populate(self):
        factor = self._factor()
        result = factor.analyze("leaf")
        tr = result.transformed
        assert tr.extraction_seconds >= 0.0
        assert tr.synthesis_seconds >= 0.0
        assert result.extraction.extraction_seconds == tr.extraction_seconds

    def test_atpg_report_timings_from_one_clock(self):
        from repro.atpg.engine import AtpgOptions

        factor = self._factor()
        result = factor.analyze("leaf")
        report = factor.generate_tests(
            result, AtpgOptions(max_frames=2, random_sequences=2,
                                random_sequence_length=8),
        )
        assert report.total_seconds > 0.0
        assert report.test_gen_seconds >= 0.0
        assert report.fault_sim_seconds >= 0.0
        # Phases are CPU-time subsets of the span-derived total.
        assert (report.test_gen_seconds + report.fault_sim_seconds
                <= report.total_seconds + 0.05)
        assert report.record is not None
        atpg_span = report.record.span("atpg")
        assert atpg_span is not None
        assert {c.name for c in atpg_span.children} == {
            "atpg.random", "atpg.podem"
        }

    def test_abort_reasons_accounted(self):
        from repro.atpg.engine import AtpgOptions

        factor = self._factor()
        result = factor.analyze("leaf")
        report = factor.generate_tests(
            result, AtpgOptions(max_frames=2, backtrack_limit=0,
                                random_sequences=0),
        )
        assert sum(report.abort_reasons.values()) == report.aborted
