"""One golden trigger design per shipped lint rule.

Each test parses a minimal source containing exactly one seeded problem and
asserts the expected rule fires with the right module and line.  Sources use
explicit leading newlines so the line numbers in the asserts match the
Verilog text one-to-one.
"""

from repro.hierarchy.design import Design
from repro.lint import LintConfig, run_lint
from repro.verilog.parser import parse_source


def lint(src, top=None, **cfg):
    design = Design(parse_source(src), top=top)
    config = LintConfig(**cfg) if cfg else None
    return run_lint(design, config)


def only(result, rule_id):
    found = [d for d in result.diagnostics if d.rule_id == rule_id]
    assert found, (
        f"{rule_id} did not fire; got "
        f"{[(d.rule_id, d.signal) for d in result.diagnostics]}")
    return found


class TestAstRules:
    def test_w001_multiple_drivers(self):
        res = lint("""
module m(input a, input b, output y);
  wire t;
  assign t = a;
  assign t = b;
  assign y = t;
endmodule
""")
        (diag,) = only(res, "W001")
        assert diag.severity == "error"
        assert (diag.module, diag.signal, diag.line) == ("m", "t", 4)
        assert len(diag.trace) == 2

    def test_w001_per_bit_assigns_are_legal(self):
        res = lint("""
module m(input a, input b, output [1:0] y);
  assign y[0] = a;
  assign y[1] = b;
endmodule
""")
        assert not [d for d in res.diagnostics if d.rule_id == "W001"]

    def test_w002_undriven_net(self):
        res = lint("""
module m(input a, output y);
  wire ghost;
  assign y = a & ghost;
endmodule
""")
        (diag,) = only(res, "W002")
        assert (diag.module, diag.signal, diag.line) == ("m", "ghost", 3)
        assert diag.trace  # points at the use site

    def test_w003_unused_and_unreferenced(self):
        res = lint("""
module m(input a, output y);
  wire dead;
  wire never_touched;
  assign dead = a;
  assign y = a;
endmodule
""")
        found = {d.signal: d for d in only(res, "W003")}
        assert found["dead"].line == 3
        assert "never used" in found["dead"].message
        assert found["never_touched"].line == 4
        assert "never referenced" in found["never_touched"].message

    def test_w004_incomplete_case(self):
        res = lint("""
module m(input [1:0] s, output reg y);
  always @(*) begin
    y = 1'b0;
    case (s)
      2'b00: y = 1'b1;
      2'b01: y = 1'b0;
    endcase
  end
endmodule
""")
        (diag,) = only(res, "W004")
        assert (diag.module, diag.line) == ("m", 5)
        assert "s" in diag.signal

    def test_w004_full_case_is_clean(self):
        res = lint("""
module m(input [0:0] s, output reg y);
  always @(*) begin
    case (s)
      1'b0: y = 1'b1;
      1'b1: y = 1'b0;
    endcase
  end
endmodule
""")
        assert not [d for d in res.diagnostics if d.rule_id == "W004"]

    def test_w005_latch_inference(self):
        res = lint("""
module m(input en, input d, output reg q);
  always @(*) begin
    if (en)
      q = d;
  end
endmodule
""")
        (diag,) = only(res, "W005")
        assert (diag.module, diag.signal, diag.line) == ("m", "q", 3)

    def test_w005_else_covers_all_paths(self):
        res = lint("""
module m(input en, input d, output reg q);
  always @(*) begin
    if (en)
      q = d;
    else
      q = 1'b0;
  end
endmodule
""")
        assert not [d for d in res.diagnostics if d.rule_id == "W005"]

    def test_w006_blocking_mix(self):
        res = lint("""
module m(input clk, input d, output reg q);
  reg t;
  always @(posedge clk) begin
    t = d;
    q <= t;
  end
endmodule
""")
        (diag,) = only(res, "W006")
        assert (diag.module, diag.line) == ("m", 4)
        assert "line 5" in diag.message and "line 6" in diag.message

    def test_w007_truncating_assign(self):
        res = lint("""
module m(input [7:0] a, output [3:0] y);
  assign y = a;
endmodule
""")
        (diag,) = only(res, "W007")
        assert (diag.module, diag.signal, diag.line) == ("m", "y", 3)
        assert "truncates" in diag.message

    def test_w007_arithmetic_widening_is_clean(self):
        res = lint("""
module m(input [3:0] a, input [3:0] b, output [7:0] y);
  assign y = a * b;
endmodule
""")
        assert not [d for d in res.diagnostics if d.rule_id == "W007"]

    def test_w008_port_width_mismatch(self):
        res = lint("""
module child(input [3:0] x, output y);
  assign y = ^x;
endmodule
module top(input [7:0] a, output y);
  child u (.x(a), .y(y));
endmodule
""", top="top")
        (diag,) = only(res, "W008")
        assert (diag.module, diag.signal, diag.line) == ("top", "u.x", 6)

    def test_w009_dead_branch(self):
        res = lint("""
module m(input clk, input d, output reg q);
  always @(posedge clk) begin
    if (1'b0)
      q <= d;
    else
      q <= ~d;
  end
endmodule
""")
        (diag,) = only(res, "W009")
        assert (diag.module, diag.line) == ("m", 4)
        assert diag.severity == "info"


class TestChainRules:
    def test_w101_undriven_output_port(self):
        res = lint("""
module m(input a, output y, output z);
  assign y = a;
endmodule
""")
        (diag,) = only(res, "W101")
        assert diag.severity == "error"
        assert (diag.module, diag.signal, diag.line) == ("m", "z", 2)

    def test_w102_unused_input_port(self):
        res = lint("""
module m(input a, input unused, output y);
  assign y = a;
endmodule
""")
        (diag,) = only(res, "W102")
        assert diag.severity == "warning"
        assert (diag.module, diag.signal, diag.line) == ("m", "unused", 2)

    def test_w103_constant_cone_input(self):
        res = lint("""
module child(input [1:0] mode, input d, output y);
  assign y = d & mode[0];
endmodule
module top(input d, output y);
  wire [1:0] knot;
  assign knot = 2'b10;
  child u (.mode(knot), .d(d), .y(y));
endmodule
""", top="top")
        found = only(res, "W103")
        diag = [d for d in found if d.signal == "u.mode"][0]
        assert diag.severity == "info"
        assert (diag.module, diag.line) == ("top", 8)
        assert diag.trace  # constant source sites


class TestNetlistRules:
    def test_w200_elaboration_failure(self):
        # Multiple full drivers elaborate to driver contention.
        res = lint("""
module m(input a, input b, output y);
  assign y = a;
  assign y = b;
endmodule
""")
        (diag,) = only(res, "W200")
        assert diag.severity == "error"
        assert diag.module == "m"
        assert "elaboration failed" in diag.message

    def test_w201_combinational_loop(self):
        res = lint("""
module m(input a, output y);
  wire loopnet;
  and g1 (loopnet, loopnet, a);
  assign y = loopnet;
endmodule
""")
        (diag,) = only(res, "W201")
        assert diag.severity == "error"
        assert diag.module == "m"
        assert "loopnet" in diag.message

    def test_w202_floating_gate_input(self):
        res = lint("""
module m(input a, output y);
  wire floatnet;
  and g1 (y, a, floatnet);
endmodule
""")
        found = only(res, "W202")
        assert any(d.signal == "floatnet" for d in found)
        assert all(d.severity == "warning" for d in found)

    def test_clean_design_has_no_findings(self):
        res = lint("""
module m(input clk, input d, output reg q);
  always @(posedge clk)
    q <= d;
endmodule
""")
        assert res.diagnostics == []
