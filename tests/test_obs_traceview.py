"""Waterfall/top-spans rendering over stitched trace lines."""

from repro.obs.traceview import (
    BAR_WIDTH,
    span_children,
    top_spans,
    trace_summary,
    waterfall_rows,
)


def _span(id_, parent, name, start, wall, process="worker", cpu=None):
    return {"trace_id": "t" * 32, "id": id_, "parent": parent,
            "name": name, "process": process, "start_unix": start,
            "wall_s": wall, "cpu_s": wall if cpu is None else cpu,
            "attrs": {}}


def _sample():
    return [
        _span("aaaa", None, "serve.submit", 100.0, 1.0, process="server"),
        _span("bbbb", "aaaa", "serve.execute", 100.1, 0.8),
        _span("cccc", "bbbb", "parse", 100.1, 0.2),
        _span("dddd", "bbbb", "atpg", 100.4, 0.5),
    ]


class TestSpanChildren:
    def test_groups_by_parent_in_start_order(self):
        children = span_children(_sample())
        assert [s["name"] for s in children[None]] == ["serve.submit"]
        assert [s["name"] for s in children["bbbb"]] == ["parse", "atpg"]

    def test_unknown_parent_becomes_root(self):
        spans = [_span("aaaa", "ffff", "orphan", 1.0, 0.5)]
        children = span_children(spans)
        assert [s["name"] for s in children[None]] == ["orphan"]


class TestWaterfall:
    def test_rows_preorder_with_indent(self):
        rows = waterfall_rows(_sample())
        assert [r["span"] for r in rows] == [
            "serve.submit", "  serve.execute", "    parse", "    atpg"]
        assert rows[0]["proc"] == "server"

    def test_bars_scaled_to_total(self):
        rows = waterfall_rows(_sample())
        for row in rows:
            assert len(row["timeline"]) == BAR_WIDTH
            assert "#" in row["timeline"]
        # The root covers the whole trace -> a full-width bar.
        assert rows[0]["timeline"].strip() == "#" * BAR_WIDTH
        # Later spans start later in the bar.
        assert rows[3]["timeline"].index("#") > \
            rows[2]["timeline"].index("#")

    def test_empty_input(self):
        assert waterfall_rows([]) == []

    def test_zero_duration_trace(self):
        rows = waterfall_rows([_span("aaaa", None, "instant", 5.0, 0.0)])
        assert len(rows) == 1
        assert rows[0]["timeline"] == "#" * BAR_WIDTH


class TestTopSpans:
    def test_ranked_by_wall_and_limited(self):
        rows = top_spans(_sample(), limit=2)
        assert [r["span"] for r in rows] == ["serve.submit",
                                            "serve.execute"]


class TestSummary:
    def test_counts_and_total(self):
        summary = trace_summary(_sample())
        assert summary["spans"] == 4
        assert summary["trace_ids"] == ["t" * 32]
        assert summary["processes"] == ["server", "worker"]
        assert summary["total_wall_s"] == 1.0
